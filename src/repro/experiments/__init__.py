"""Experiments regenerating every table and figure of the paper's evaluation."""

from repro.experiments.figure5 import Figure5Result, run_figure5, summarize_figure5
from repro.experiments.figure6 import (
    DEFAULT_CHANNEL_SWEEP,
    DEFAULT_DEPTH_SWEEP_M,
    Figure6Result,
    run_figure6,
    summarize_figure6,
)
from repro.experiments.figure7 import (
    DEFAULT_CONTACT_YIELDS,
    DEFAULT_MANUFACTURING_YIELDS,
    DEFAULT_SITE_SWEEP,
    Figure7aResult,
    Figure7bResult,
    run_figure7a,
    run_figure7b,
    summarize_figure7,
)
from repro.experiments.table1 import (
    DEFAULT_ATE_CHANNELS,
    DEFAULT_DEPTH_GRIDS_K,
    Table1Result,
    Table1Row,
    run_table1,
    run_table1_row,
    summarize_table1,
)
from repro.experiments.economics import (
    EconomicsResult,
    UpgradeOption,
    run_economics,
    summarize_economics,
)
from repro.experiments.ablation import (
    PlacementAblationResult,
    WrapperAblationResult,
    run_placement_ablation,
    run_wrapper_ablation,
)
from repro.experiments.solver_comparison import (
    SolverComparisonResult,
    SolverRow,
    derived_small_socs,
    run_solver_comparison,
    summarize_solver_comparison,
)
from repro.experiments.objective_comparison import (
    ObjectiveComparisonResult,
    run_objective_comparison,
    summarize_objective_comparison,
)
from repro.experiments.sa_knob_search import (
    SaKnobSearchResult,
    run_sa_knob_search,
    summarize_sa_knob_search,
)
from repro.experiments.registry import (
    Experiment,
    experiment_names,
    get_experiment,
    list_experiments,
    register_experiment,
    render_experiment,
    run_experiment,
    run_experiments,
)
from repro.experiments.runner import REPORT_EXPERIMENTS, ExperimentReport, run_all_experiments

__all__ = [
    "Experiment",
    "experiment_names",
    "get_experiment",
    "list_experiments",
    "register_experiment",
    "render_experiment",
    "run_experiment",
    "run_experiments",
    "REPORT_EXPERIMENTS",
    "Figure5Result",
    "run_figure5",
    "summarize_figure5",
    "DEFAULT_CHANNEL_SWEEP",
    "DEFAULT_DEPTH_SWEEP_M",
    "Figure6Result",
    "run_figure6",
    "summarize_figure6",
    "DEFAULT_CONTACT_YIELDS",
    "DEFAULT_MANUFACTURING_YIELDS",
    "DEFAULT_SITE_SWEEP",
    "Figure7aResult",
    "Figure7bResult",
    "run_figure7a",
    "run_figure7b",
    "summarize_figure7",
    "DEFAULT_ATE_CHANNELS",
    "DEFAULT_DEPTH_GRIDS_K",
    "Table1Result",
    "Table1Row",
    "run_table1",
    "run_table1_row",
    "summarize_table1",
    "EconomicsResult",
    "UpgradeOption",
    "run_economics",
    "summarize_economics",
    "PlacementAblationResult",
    "WrapperAblationResult",
    "run_placement_ablation",
    "run_wrapper_ablation",
    "SolverComparisonResult",
    "SolverRow",
    "derived_small_socs",
    "run_solver_comparison",
    "summarize_solver_comparison",
    "ObjectiveComparisonResult",
    "run_objective_comparison",
    "summarize_objective_comparison",
    "SaKnobSearchResult",
    "run_sa_knob_search",
    "summarize_sa_knob_search",
    "ExperimentReport",
    "run_all_experiments",
]
