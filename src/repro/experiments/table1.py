"""Table 1: ATE channels and maximum multi-site on the ITC'02 benchmarks.

The paper's Table 1 compares, for four ITC'02 SOC Test Benchmarks and eleven
vector-memory depths each, the number of ATE channels ``k`` one SOC needs
and the resulting maximum multi-site ``n_max``:

* a theoretical lower bound on ``k`` (column "LB"),
* the rectangle bin-packing approach of Iyengar et al. [7],
* the paper's Step-1 algorithm ("Us").

The comparison assumes stimuli broadcast and runs Step 1 only (no throughput
optimisation), as the paper does to match [7]'s setting.  The depth grids
reproduce the paper's; the ATE channel counts are chosen per benchmark so the
``n_max`` values land in the paper's range (256 channels for d695, 512 for
the three Philips SOCs -- the values implied by the published ``n_max``
columns).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.api.engine import Engine
from repro.ate.probe_station import reference_probe_station
from repro.ate.spec import AteSpec
from repro.baselines.lower_bound import channel_lower_bound
from repro.baselines.rectangle import pack_rectangles
from repro.core.exceptions import ConfigurationError
from repro.core.units import format_depth, kilo_vectors
from repro.experiments.registry import register_experiment
from repro.itc02.registry import TABLE1_BENCHMARKS, load_benchmark
from repro.optimize.config import OptimizationConfig
from repro.optimize.step1 import run_step1
from repro.reporting.tables import Table

#: Vector-memory depth grids (in K vectors) per benchmark, from the paper.
DEFAULT_DEPTH_GRIDS_K: Mapping[str, tuple[int, ...]] = {
    "d695": (48, 56, 64, 72, 80, 88, 96, 104, 112, 120, 128),
    "p22810": (384, 448, 512, 576, 640, 704, 768, 832, 896, 960, 1024),
    "p34392": (768, 896, 1024, 1152, 1280, 1408, 1536, 1664, 1792, 1920, 2048),
    "p93791": (1024, 1280, 1536, 1792, 2048, 2304, 2560, 2816, 3072, 3328, 3584),
}

#: ATE channel counts per benchmark implied by the paper's n_max columns.
DEFAULT_ATE_CHANNELS: Mapping[str, int] = {
    "d695": 256,
    "p22810": 512,
    "p34392": 512,
    "p93791": 512,
}


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1 (one benchmark at one memory depth)."""

    soc_name: str
    depth: int
    lower_bound_channels: int
    baseline_channels: int
    baseline_sites: int
    our_channels: int
    our_sites: int

    @property
    def matches_lower_bound(self) -> bool:
        """True when our Step 1 uses exactly the lower-bound channel count."""
        return self.our_channels == self.lower_bound_channels

    @property
    def beats_baseline_sites(self) -> bool:
        """True when our maximum multi-site is at least the baseline's."""
        return self.our_sites >= self.baseline_sites


@dataclass(frozen=True)
class Table1Result:
    """Regenerated data of Table 1 for one or more benchmarks."""

    rows: tuple[Table1Row, ...]

    def rows_for(self, soc_name: str) -> tuple[Table1Row, ...]:
        """Rows of one benchmark, in increasing depth order."""
        return tuple(row for row in self.rows if row.soc_name == soc_name)

    @property
    def benchmarks(self) -> tuple[str, ...]:
        """Benchmark names present, in first-appearance order."""
        seen: list[str] = []
        for row in self.rows:
            if row.soc_name not in seen:
                seen.append(row.soc_name)
        return tuple(seen)

    def to_table(self, soc_name: str) -> Table:
        """Render one benchmark's block of Table 1."""
        table = Table(
            title=f"Table 1 -- {soc_name}",
            columns=["depth", "k LB", "k [7]", "k Us", "n_max [7]", "n_max Us"],
        )
        for row in self.rows_for(soc_name):
            table.add_row(
                [
                    format_depth(row.depth),
                    row.lower_bound_channels,
                    row.baseline_channels,
                    row.our_channels,
                    row.baseline_sites,
                    row.our_sites,
                ]
            )
        return table


def run_table1_row(soc_name: str, depth: int, channels: int) -> Table1Row:
    """Compute one Table-1 row: lower bound, baseline and Step 1."""
    soc = load_benchmark(soc_name)
    ate = AteSpec(channels=channels, depth=depth, frequency_hz=5e6, name=f"ate-{soc_name}")
    config = OptimizationConfig(broadcast=True)

    lower_bound = channel_lower_bound(soc, depth, channels)
    baseline = pack_rectangles(soc, channels, depth)
    ours = run_step1(soc, ate, reference_probe_station(), config)

    return Table1Row(
        soc_name=soc_name,
        depth=depth,
        lower_bound_channels=lower_bound.ate_channels,
        baseline_channels=baseline.ate_channels,
        baseline_sites=baseline.max_sites(channels, broadcast=True),
        our_channels=ours.channels_per_site,
        our_sites=ours.max_sites,
    )


def run_table1(
    benchmarks: Sequence[str] = TABLE1_BENCHMARKS,
    depth_grids_k: Mapping[str, Sequence[int]] | None = None,
    ate_channels: Mapping[str, int] | None = None,
) -> Table1Result:
    """Regenerate Table 1 for the requested benchmarks.

    ``depth_grids_k`` maps benchmark name to the list of depths in K vectors
    (defaults to the paper's grids); ``ate_channels`` maps benchmark name to
    the ATE channel count (defaults to the paper-implied values).
    """
    if not benchmarks:
        raise ConfigurationError("benchmark list must not be empty")
    grids = dict(DEFAULT_DEPTH_GRIDS_K)
    if depth_grids_k:
        grids.update({name: tuple(values) for name, values in depth_grids_k.items()})
    channel_map = dict(DEFAULT_ATE_CHANNELS)
    if ate_channels:
        channel_map.update(ate_channels)

    rows: list[Table1Row] = []
    for name in benchmarks:
        if name not in grids:
            raise ConfigurationError(f"no depth grid for benchmark {name!r}")
        if name not in channel_map:
            raise ConfigurationError(f"no ATE channel count for benchmark {name!r}")
        for depth_k in grids[name]:
            rows.append(run_table1_row(name, kilo_vectors(depth_k), channel_map[name]))
    return Table1Result(rows=tuple(rows))


def summarize_table1(result: Table1Result) -> str:
    """Human-readable summary used by the CLI and EXPERIMENTS.md."""
    lines = ["Table 1 -- maximum multi-site on the ITC'02 benchmarks (Step 1, broadcast)"]
    for name in result.benchmarks:
        rows = result.rows_for(name)
        matches = sum(1 for row in rows if row.matches_lower_bound)
        at_least = sum(1 for row in rows if row.beats_baseline_sites)
        lines.append(
            f"  {name}: {matches}/{len(rows)} depths match the channel lower bound, "
            f"{at_least}/{len(rows)} depths reach at least the baseline's multi-site"
        )
    return "\n".join(lines)


def render_table1(result: Table1Result) -> str:
    """Full CLI output of the table1 experiment."""
    lines: list[str] = []
    for name in result.benchmarks:
        lines.append(result.to_table(name).render())
        lines.append("")
    lines.append(summarize_table1(result))
    return "\n".join(lines)


@register_experiment(
    "table1",
    title="Table 1 -- maximum multi-site on the ITC'02 benchmarks",
    render=render_table1,
)
def _table1_experiment(engine: Engine) -> Table1Result:
    # Table 1 compares Step-1 designs and baselines, not full two-step
    # optimisations, so it has no per-scenario work to memoise yet.
    return run_table1()
