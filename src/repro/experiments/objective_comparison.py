"""Objective back-off: what the optimum looks like under each objective.

The objective registry (:mod:`repro.objectives`) makes *what is optimised*
a scenario dimension; this experiment quantifies what that dimension buys
on the d695 benchmark: the same solver, the same operating points, swept
over every registered objective.  The resulting table shows how the chosen
multi-site (``n_opt``, ``k``) moves with the objective -- throughput packs
sites, test time spends the whole budget on one wide site, the cost and
channel-efficiency objectives settle in between -- and the analysis layer
(:mod:`repro.analysis`) extracts the test-time-vs-capital Pareto front of
the swept operating points.

All runs are expanded with :meth:`Scenario.sweep`'s ``objectives`` axis
and executed as one engine batch, so the experiment parallelises and
caches like any other sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.analyze import pareto_front, records_table
from repro.analysis.records import AnalysisRecord, records_from_results
from repro.api.engine import Engine
from repro.api.scenario import Scenario
from repro.api.testcell import reference_test_cell
from repro.experiments.registry import register_experiment
from repro.objectives.registry import get_objective, objective_names
from repro.reporting.tables import Table

#: ATE channel counts of the swept operating points (64 K vectors each).
COMPARISON_CHANNELS = (128, 256, 512)

#: Vector-memory depth of the comparison (the d695 Table-1 region).
COMPARISON_DEPTH_M = 0.0625

#: The Pareto pair the experiment extracts: test time against employed capital.
PARETO_METRICS = ("time", "cost")


@dataclass(frozen=True)
class ObjectiveComparisonResult:
    """Outcome of the objective comparison on d695."""

    records: tuple[AnalysisRecord, ...]
    front: tuple[AnalysisRecord, ...]

    @property
    def objectives(self) -> tuple[str, ...]:
        """Objective names present, sorted."""
        return tuple(sorted({record.objective for record in self.records}))

    def records_for(self, objective: str) -> tuple[AnalysisRecord, ...]:
        """Records of one objective, in deterministic record order."""
        return tuple(
            record for record in self.records if record.objective == objective
        )

    def to_table(self) -> Table:
        """Render the per-objective optima as a table."""
        table = Table(
            title="Objective comparison (d695, 64K vectors)",
            columns=["objective", "sense", "N", "n_opt", "k", "value", "units"],
        )
        for name in self.objectives:
            spec = get_objective(name)
            for record in self.records_for(name):
                table.add_row(
                    [
                        name,
                        spec.sense,
                        record.channels,
                        record.optimal_sites,
                        record.channels_per_site,
                        f"{record.value:.4g}",
                        spec.units,
                    ]
                )
        return table


def run_objective_comparison(
    engine: Engine | None = None,
    workers: int | None = None,
) -> ObjectiveComparisonResult:
    """Sweep d695 over every registered objective and extract the Pareto front."""
    engine = engine if engine is not None else Engine()
    cell = reference_test_cell(channels=COMPARISON_CHANNELS[0], depth_m=COMPARISON_DEPTH_M)
    scenarios = Scenario.sweep(
        "d695",
        cell,
        channels=COMPARISON_CHANNELS,
        objectives=objective_names(),
    )
    results = engine.run_batch(scenarios, workers=workers)
    records = records_from_results(results)
    return ObjectiveComparisonResult(
        records=records, front=pareto_front(records, *PARETO_METRICS)
    )


def summarize_objective_comparison(result: ObjectiveComparisonResult) -> str:
    """Human-readable summary used by the CLI and EXPERIMENTS.md."""
    lines = [
        f"Objective comparison -- {len(result.objectives)} registered objectives "
        f"on d695 at {len(COMPARISON_CHANNELS)} operating points"
    ]
    throughput = {
        record.channels: record for record in result.records_for("throughput")
    }
    test_time = {record.channels: record for record in result.records_for("test_time")}
    shared = sorted(throughput.keys() & test_time.keys())
    if shared:
        moved = sum(
            1
            for channels in shared
            if throughput[channels].optimal_sites != test_time[channels].optimal_sites
        )
        lines.append(
            f"  the optimal multi-site moves with the objective on {moved}/{len(shared)} "
            "operating points (throughput packs sites, test_time widens one)"
        )
    lines.append(
        f"  {PARETO_METRICS[0]}-vs-{PARETO_METRICS[1]} Pareto front: "
        f"{len(result.front)} of {len(result.records)} swept points are non-dominated"
    )
    return "\n".join(lines)


def render_objective_comparison(result: ObjectiveComparisonResult) -> str:
    """Full CLI output of the objective-comparison experiment."""
    return "\n".join(
        [
            result.to_table().render(),
            "",
            records_table(
                result.front, title="Pareto front (time vs cost, all objectives)"
            ).render(),
            "",
            summarize_objective_comparison(result),
        ]
    )


@register_experiment(
    "objective_comparison",
    title="Objectives -- throughput vs test time vs cost per good die (d695)",
    render=render_objective_comparison,
)
def _objective_comparison_experiment(engine: Engine) -> ObjectiveComparisonResult:
    return run_objective_comparison(engine=engine)
