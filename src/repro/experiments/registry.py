"""Registry of the paper's experiments.

Before this registry existed, ``experiments/runner.py`` and the CLI
hard-wired every experiment by name; adding a workload meant editing both.
Now each experiment module registers itself with
:func:`register_experiment`, and both :func:`~repro.experiments.runner.
run_all_experiments` and the CLI iterate the registry through one shared
:class:`~repro.api.engine.Engine` (so operating points that several
experiments share -- e.g. the reference PNX8550 design -- are optimised
once and served from the engine cache afterwards).

An experiment is a callable ``runner(engine) -> result`` plus a ``render``
callable that turns the result into the experiment's full CLI output text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.api.engine import Engine
from repro.core.exceptions import ConfigurationError

#: ``runner(engine) -> result``: regenerate the experiment's artefact.
ExperimentRunner = Callable[[Engine], Any]

#: ``render(result) -> str``: the experiment's full plain-text output.
ExperimentRenderer = Callable[[Any], str]


@dataclass(frozen=True)
class Experiment:
    """One registered experiment."""

    name: str
    title: str
    runner: ExperimentRunner
    render: ExperimentRenderer

    def run(self, engine: Engine | None = None) -> Any:
        """Run the experiment through ``engine`` (a fresh one when omitted)."""
        return self.runner(engine if engine is not None else Engine())


_REGISTRY: dict[str, Experiment] = {}


def register_experiment(
    name: str,
    title: str,
    render: ExperimentRenderer,
) -> Callable[[ExperimentRunner], ExperimentRunner]:
    """Class/function decorator registering an experiment runner under ``name``.

    >>> @register_experiment("demo", title="Demo", render=str)   # doctest: +SKIP
    ... def _run_demo(engine):
    ...     return 42
    """
    if not name:
        raise ConfigurationError("experiment name must be non-empty")

    def decorator(runner: ExperimentRunner) -> ExperimentRunner:
        if name in _REGISTRY:
            raise ConfigurationError(f"experiment {name!r} is already registered")
        _REGISTRY[name] = Experiment(name=name, title=title, runner=runner, render=render)
        return runner

    return decorator


def get_experiment(name: str) -> Experiment:
    """Look an experiment up by name.

    Raises
    ------
    ConfigurationError
        When no experiment of that name is registered.
    """
    # Importing the package guarantees every experiment module had the
    # chance to register itself, even when only this module was imported.
    import repro.experiments  # noqa: F401  (self-registration side effect)

    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(f"unknown experiment {name!r}; registered: {known}")
    return _REGISTRY[name]


def experiment_names() -> tuple[str, ...]:
    """Names of all registered experiments, sorted."""
    import repro.experiments  # noqa: F401  (self-registration side effect)

    return tuple(sorted(_REGISTRY))


def list_experiments() -> tuple[Experiment, ...]:
    """All registered experiments, sorted by name."""
    return tuple(_REGISTRY[name] for name in experiment_names())


def run_experiment(name: str, engine: Engine | None = None) -> Any:
    """Run one registered experiment by name through ``engine``."""
    return get_experiment(name).run(engine)


def render_experiment(name: str, result: Any) -> str:
    """Render a result produced by :func:`run_experiment` as output text."""
    return get_experiment(name).render(result)


def run_experiments(
    names: Iterable[str], engine: Engine | None = None
) -> dict[str, Any]:
    """Run several experiments through one shared engine, in the given order."""
    engine = engine if engine is not None else Engine()
    return {name: run_experiment(name, engine) for name in names}
