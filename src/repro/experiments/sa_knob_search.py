"""SA knob search: grid-search annealing knobs over a SweepGrid shard.

The ``simulated_annealing`` backend exposes its temperature schedule and
restart budget as scenario solver options; this experiment quantifies how
much those knobs matter.  A small :class:`~repro.api.grid.SweepGrid` of
synthetic SoCs (sharded, so the experiment exercises the same campaign
mechanics a distributed knob search would use) is run once per knob combo,
every run flowing through the engine with the combo attached via
``Scenario.with_solver_options`` -- so each combo gets its own canonical
keys/digests while the knob-free defaults row keeps the pre-options key.

The report renders a per-(SoC, combo) table plus the best-per-SoC view of
:mod:`repro.analysis <repro.analysis.analyze>` (the same machinery behind
``repro analyze``), with the certificate gap of every winner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.analyze import best_table
from repro.analysis.records import AnalysisRecord, records_from_results
from repro.api.engine import Engine
from repro.api.grid import SweepGrid
from repro.api.scenario import Scenario
from repro.api.testcell import reference_test_cell
from repro.experiments.registry import register_experiment
from repro.reporting.tables import Table
from repro.soc.catalog import synthetic_family

#: Synthetic family the knobs are searched over.
FAMILY_SEED = 2005
FAMILY_COUNT = 4
FAMILY_MODULES = 12

#: Which shard of the family grid this experiment runs (index, count); the
#: other shards are left to sibling campaign runs, exactly as a
#: distributed knob search would split them.
FAMILY_SHARD = (0, 2)

#: Test cell of the search: the reference prober with a mid-size ATE.
SEARCH_CHANNELS = 256
SEARCH_DEPTH_M = 1.0

#: The knob grid.  The first (empty) combo runs the backend defaults --
#: and, having no options, keeps the scenario's pre-options canonical key.
KNOB_GRID: tuple[Mapping[str, object], ...] = (
    {},
    {"temperature": 0.5, "cooling": 0.8, "moves_per_temp": 20},
    {"temperature": 2.0, "cooling": 0.9},
    {"restarts": 3},
    {"temperature": 2.0, "cooling": 0.9, "moves_per_temp": 60, "restarts": 2},
)


def describe_knobs(knobs: Mapping[str, object]) -> str:
    """Compact combo label used in tables (``defaults`` for the empty combo)."""
    if not knobs:
        return "defaults"
    return " ".join(f"{name}={knobs[name]}" for name in sorted(knobs))


@dataclass(frozen=True)
class KnobRow:
    """One (SoC, knob combo) outcome of the search."""

    soc_name: str
    knobs: str
    optimal_sites: int
    channels_per_site: int
    value: float
    gap: float | None


@dataclass(frozen=True)
class SaKnobSearchResult:
    """Outcome of the knob search over the whole shard."""

    rows: tuple[KnobRow, ...]
    records: tuple[AnalysisRecord, ...]

    @property
    def soc_names(self) -> tuple[str, ...]:
        """SoCs searched, in first-appearance order."""
        seen: list[str] = []
        for row in self.rows:
            if row.soc_name not in seen:
                seen.append(row.soc_name)
        return tuple(seen)

    def rows_for(self, soc_name: str) -> tuple[KnobRow, ...]:
        """Rows of one SoC, in knob-grid order."""
        return tuple(row for row in self.rows if row.soc_name == soc_name)

    def best_row(self, soc_name: str) -> KnobRow:
        """The best combo of one SoC (ties resolve to the earliest combo)."""
        rows = self.rows_for(soc_name)
        return max(rows, key=lambda row: row.value)

    def to_table(self) -> Table:
        """Render the per-(SoC, combo) outcomes as a table."""
        table = Table(
            title="SA knob search (synthetic shard)",
            columns=["SOC", "knobs", "n_opt", "k", "D_th (/h)", "gap"],
        )
        for soc_name in self.soc_names:
            for row in self.rows_for(soc_name):
                table.add_row(
                    [
                        row.soc_name,
                        row.knobs,
                        row.optimal_sites,
                        row.channels_per_site,
                        round(row.value, 1),
                        "-" if row.gap is None else f"{row.gap:.2%}",
                    ]
                )
        return table


def search_grid() -> SweepGrid:
    """The sharded SoC grid the knobs are searched over."""
    return SweepGrid(
        synthetic_family(FAMILY_SEED, count=FAMILY_COUNT, modules=FAMILY_MODULES),
        reference_test_cell(channels=SEARCH_CHANNELS, depth_m=SEARCH_DEPTH_M),
        solvers="simulated_annealing",
    )


def run_sa_knob_search(
    knob_grid: Sequence[Mapping[str, object]] = KNOB_GRID,
    engine: Engine | None = None,
    workers: int | None = None,
) -> SaKnobSearchResult:
    """Run every knob combo on every shard SoC and collect the outcomes."""
    engine = engine if engine is not None else Engine()
    index, count = FAMILY_SHARD
    base = search_grid().shard(index, count).scenarios()

    scenarios: list[Scenario] = []
    labels: list[str] = []
    for scenario in base:
        for knobs in knob_grid:
            scenarios.append(scenario.with_solver_options(**knobs))
            labels.append(describe_knobs(knobs))

    results = engine.run_batch(scenarios, workers=workers)
    records = records_from_results(results)
    by_key = {record.key: record for record in records}
    rows = tuple(
        KnobRow(
            soc_name=outcome.soc_name,
            knobs=label,
            optimal_sites=outcome.optimal_sites,
            channels_per_site=outcome.step1.channels_per_site,
            value=outcome.optimal_throughput,
            gap=by_key[outcome.scenario.key].gap,
        )
        for outcome, label in zip(results, labels)
    )
    return SaKnobSearchResult(rows=rows, records=records)


def summarize_sa_knob_search(result: SaKnobSearchResult) -> str:
    """Human-readable summary used by the CLI and EXPERIMENTS.md."""
    lines = ["SA knob search -- annealing schedule sensitivity"]
    beats = 0
    for soc_name in result.soc_names:
        best = result.best_row(soc_name)
        defaults = next(row for row in result.rows_for(soc_name) if row.knobs == "defaults")
        if best.value > defaults.value:
            beats += 1
        lines.append(
            f"  {soc_name}: best combo [{best.knobs}] at {best.value:.1f}/h"
            + ("" if best.gap is None else f" (certificate gap {best.gap:.2%})")
        )
    lines.append(
        f"  tuned knobs strictly beat the defaults on {beats}/"
        f"{len(result.soc_names)} SoCs"
    )
    return "\n".join(lines)


def render_sa_knob_search(result: SaKnobSearchResult) -> str:
    """Full CLI output of the knob-search experiment."""
    return "\n".join(
        [
            result.to_table().render(),
            "",
            best_table(result.records).render(),
            "",
            summarize_sa_knob_search(result),
        ]
    )


@register_experiment(
    "sa_knob_search",
    title="Simulated-annealing knob search over a synthetic SweepGrid shard",
    render=render_sa_knob_search,
)
def _sa_knob_search_experiment(engine: Engine) -> SaKnobSearchResult:
    return run_sa_knob_search(engine=engine)
