"""Figure 6: throughput versus ATE channel count and vector-memory depth.

The paper's Figure 6 extends the reference ATE (512 channels x 7 M, 5 MHz)
in two directions and plots the resulting PNX8550 throughput:

* **Figure 6(a)** -- more channels (512 .. 1024): throughput grows roughly
  linearly, because the number of sites grows linearly while the per-site
  test time stays constant;
* **Figure 6(b)** -- deeper vector memory (5 M .. 14 M): throughput grows
  clearly sub-linearly, because a deeper memory increases the number of
  sites *and* the test time per site.

Both sweeps re-run the full two-step optimisation at every point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.api.engine import Engine, optimize_scenario
from repro.ate.probe_station import ProbeStation, reference_probe_station
from repro.ate.spec import AteSpec, reference_ate
from repro.core.exceptions import ConfigurationError
from repro.core.units import MEGA
from repro.experiments.registry import register_experiment
from repro.optimize.config import OptimizationConfig
from repro.reporting.series import Series
from repro.soc.pnx8550 import make_pnx8550
from repro.soc.soc import Soc

#: Channel counts swept by Figure 6(a), matching the paper's x axis.
DEFAULT_CHANNEL_SWEEP = (512, 576, 640, 704, 768, 832, 896, 960, 1024)

#: Vector-memory depths (in M) swept by Figure 6(b), matching the paper.
DEFAULT_DEPTH_SWEEP_M = (5, 6, 7, 8, 9, 10, 11, 12, 13, 14)


@dataclass(frozen=True)
class Figure6Result:
    """Regenerated data of Figure 6."""

    throughput_vs_channels: Series
    throughput_vs_depth: Series

    @property
    def channel_scaling(self) -> float:
        """End-to-end linearity ratio of the channel sweep (1.0 = linear)."""
        return self.throughput_vs_channels.linearity_ratio()

    @property
    def depth_scaling(self) -> float:
        """End-to-end linearity ratio of the depth sweep (< 1.0 = sub-linear)."""
        return self.throughput_vs_depth.linearity_ratio()


def run_channel_sweep(
    soc: Soc,
    probe_station: ProbeStation,
    channels: Sequence[int],
    depth: int,
    frequency_hz: float,
    config: OptimizationConfig,
    engine: Engine | None = None,
) -> Series:
    """Throughput of the two-step optimum for every channel count."""
    if not channels:
        raise ConfigurationError("channel sweep must not be empty")
    points = []
    for channel_count in channels:
        ate = AteSpec(
            channels=channel_count,
            depth=depth,
            frequency_hz=frequency_hz,
            name=f"ate-{channel_count}",
        )
        result = optimize_scenario(engine, soc, ate, probe_station, config)
        points.append((float(channel_count), result.optimal_throughput))
    return Series(
        name="throughput vs ATE channels",
        x_label="ATE channels",
        y_label="devices/hour",
        points=tuple(points),
    )


def run_depth_sweep(
    soc: Soc,
    probe_station: ProbeStation,
    depths: Sequence[int],
    channels: int,
    frequency_hz: float,
    config: OptimizationConfig,
    engine: Engine | None = None,
) -> Series:
    """Throughput of the two-step optimum for every vector-memory depth."""
    if not depths:
        raise ConfigurationError("depth sweep must not be empty")
    points = []
    for depth in depths:
        ate = AteSpec(
            channels=channels,
            depth=depth,
            frequency_hz=frequency_hz,
            name=f"ate-depth-{depth}",
        )
        result = optimize_scenario(engine, soc, ate, probe_station, config)
        points.append((float(depth) / MEGA, result.optimal_throughput))
    return Series(
        name="throughput vs vector-memory depth",
        x_label="vector memory depth (M)",
        y_label="devices/hour",
        points=tuple(points),
    )


def run_figure6(
    soc: Soc | None = None,
    probe_station: ProbeStation | None = None,
    channel_sweep: Sequence[int] = DEFAULT_CHANNEL_SWEEP,
    depth_sweep_m: Sequence[float] = DEFAULT_DEPTH_SWEEP_M,
    base_channels: int = 512,
    base_depth_m: float = 7,
    frequency_hz: float = 5e6,
    config: OptimizationConfig | None = None,
    engine: Engine | None = None,
) -> Figure6Result:
    """Regenerate Figure 6 (both panels).

    All sweep parameters default to the paper's; tests use reduced sweeps to
    stay fast.
    """
    soc = soc or make_pnx8550()
    probe_station = probe_station or reference_probe_station()
    config = config or OptimizationConfig(broadcast=False)
    base = reference_ate(channels=base_channels, depth_m=base_depth_m)

    channels_series = run_channel_sweep(
        soc,
        probe_station,
        channels=list(channel_sweep),
        depth=base.depth,
        frequency_hz=frequency_hz,
        config=config,
        engine=engine,
    )
    depth_series = run_depth_sweep(
        soc,
        probe_station,
        depths=[int(round(depth_m * MEGA)) for depth_m in depth_sweep_m],
        channels=base_channels,
        frequency_hz=frequency_hz,
        config=config,
        engine=engine,
    )
    return Figure6Result(
        throughput_vs_channels=channels_series,
        throughput_vs_depth=depth_series,
    )


def summarize_figure6(result: Figure6Result) -> str:
    """Human-readable summary used by the CLI and EXPERIMENTS.md."""
    channels = result.throughput_vs_channels
    depth = result.throughput_vs_depth
    lines = [
        "Figure 6 -- PNX8550 throughput scaling",
        f"  (a) channels {channels.xs[0]:.0f} -> {channels.xs[-1]:.0f}: "
        f"D_th {channels.ys[0]:.0f} -> {channels.ys[-1]:.0f} "
        f"(+{channels.relative_gain() * 100:.0f}%, linearity {result.channel_scaling:.2f})",
        f"  (b) depth {depth.xs[0]:.0f}M -> {depth.xs[-1]:.0f}M: "
        f"D_th {depth.ys[0]:.0f} -> {depth.ys[-1]:.0f} "
        f"(+{depth.relative_gain() * 100:.0f}%, linearity {result.depth_scaling:.2f})",
    ]
    return "\n".join(lines)


def render_figure6(result: Figure6Result) -> str:
    """Full CLI output of the figure6 experiment."""
    return "\n".join(
        [
            summarize_figure6(result),
            "",
            result.throughput_vs_channels.render(),
            "",
            result.throughput_vs_depth.render(),
        ]
    )


@register_experiment(
    "figure6",
    title="Figure 6 -- PNX8550 throughput scaling",
    render=render_figure6,
)
def _figure6_experiment(engine: Engine) -> Figure6Result:
    return run_figure6(engine=engine)
