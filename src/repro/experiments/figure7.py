"""Figure 7: impact of re-testing and of abort-on-fail on multi-site testing.

* **Figure 7(a)** -- unique throughput ``D^u_th`` versus vector-memory depth
  for several per-terminal contact yields.  Deep vector memory means fewer
  ATE channels per device, hence fewer probed pads, a lower re-test rate and
  a smaller gap between ``D_th`` and ``D^u_th``.  At shallow depths and low
  contact yields the drop is severe -- the paper's argument that deep vector
  memory also helps contact yield.
* **Figure 7(b)** -- test application time ``t_t`` (with the optimistic
  abort-on-fail bound of Eq. 4.4) versus the number of sites for several
  manufacturing yields.  Even at 70% yield the abort-on-fail benefit is
  essentially gone beyond four sites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.api.engine import Engine, optimize_scenario
from repro.ate.probe_station import ProbeStation, reference_probe_station
from repro.ate.spec import AteSpec, reference_ate
from repro.core.exceptions import ConfigurationError
from repro.core.units import MEGA
from repro.experiments.registry import register_experiment
from repro.multisite.abort_on_fail import abort_on_fail_test_time
from repro.multisite.retest import unique_throughput
from repro.solvers.evaluate import timing_for
from repro.optimize.config import OptimizationConfig
from repro.reporting.series import Series, series_table
from repro.soc.pnx8550 import make_pnx8550
from repro.soc.soc import Soc

#: Contact yields plotted in Figure 7(a), matching the paper.
DEFAULT_CONTACT_YIELDS = (1.0, 0.9999, 0.9998, 0.999, 0.998, 0.99)

#: Vector-memory depths (M) swept in Figure 7(a), matching the paper.
DEFAULT_DEPTH_SWEEP_M = (5, 6, 7, 8, 9, 10, 11, 12, 13, 14)

#: Manufacturing yields plotted in Figure 7(b), matching the paper.
DEFAULT_MANUFACTURING_YIELDS = (1.0, 0.98, 0.95, 0.90, 0.80, 0.70)

#: Site counts plotted in Figure 7(b), matching the paper.
DEFAULT_SITE_SWEEP = (1, 2, 3, 4, 5, 6, 7, 8)


@dataclass(frozen=True)
class Figure7aResult:
    """Regenerated data of Figure 7(a): one series per contact yield."""

    series_by_yield: dict[float, Series]

    def series(self, contact_yield: float) -> Series:
        """Return the curve for one contact yield."""
        return self.series_by_yield[contact_yield]

    @property
    def contact_yields(self) -> tuple[float, ...]:
        """The plotted contact yields, best first."""
        return tuple(sorted(self.series_by_yield, reverse=True))


@dataclass(frozen=True)
class Figure7bResult:
    """Regenerated data of Figure 7(b): one series per manufacturing yield."""

    series_by_yield: dict[float, Series]
    full_test_time_s: float

    def series(self, manufacturing_yield: float) -> Series:
        """Return the curve for one manufacturing yield."""
        return self.series_by_yield[manufacturing_yield]

    @property
    def manufacturing_yields(self) -> tuple[float, ...]:
        """The plotted manufacturing yields, best first."""
        return tuple(sorted(self.series_by_yield, reverse=True))


def run_figure7a(
    soc: Soc | None = None,
    probe_station: ProbeStation | None = None,
    contact_yields: Sequence[float] = DEFAULT_CONTACT_YIELDS,
    depth_sweep_m: Sequence[float] = DEFAULT_DEPTH_SWEEP_M,
    channels: int = 512,
    frequency_hz: float = 5e6,
    engine: Engine | None = None,
) -> Figure7aResult:
    """Regenerate Figure 7(a): unique throughput vs depth per contact yield.

    For every depth, the architecture and the optimal site count are designed
    once (they do not depend on the contact yield); the unique throughput is
    then evaluated for each contact yield on that design.
    """
    if not contact_yields or not depth_sweep_m:
        raise ConfigurationError("contact yields and depth sweep must not be empty")
    soc = soc or make_pnx8550()
    probe_station = probe_station or reference_probe_station()
    config = OptimizationConfig(broadcast=False)

    operating_points = []
    for depth_m in depth_sweep_m:
        ate = AteSpec(
            channels=channels,
            depth=int(round(depth_m * MEGA)),
            frequency_hz=frequency_hz,
            name=f"ate-depth-{depth_m:g}M",
        )
        result = optimize_scenario(engine, soc, ate, probe_station, config)
        operating_points.append((float(depth_m), result.best))

    series_by_yield: dict[float, Series] = {}
    for contact_yield in contact_yields:
        points = []
        for depth_m, best in operating_points:
            d_unique = unique_throughput(
                best.scenario.throughput(),
                contact_yield,
                best.channels_per_site,
                approximate=True,
            )
            points.append((depth_m, d_unique))
        series_by_yield[contact_yield] = Series(
            name=f"p_c={contact_yield:g}",
            x_label="vector memory depth (M)",
            y_label="unique devices/hour",
            points=tuple(points),
        )
    return Figure7aResult(series_by_yield=series_by_yield)


def run_figure7b(
    soc: Soc | None = None,
    ate: AteSpec | None = None,
    probe_station: ProbeStation | None = None,
    manufacturing_yields: Sequence[float] = DEFAULT_MANUFACTURING_YIELDS,
    site_sweep: Sequence[int] = DEFAULT_SITE_SWEEP,
    engine: Engine | None = None,
) -> Figure7bResult:
    """Regenerate Figure 7(b): abort-on-fail test time vs sites per yield.

    The per-SOC test time is the Step-1 design of the PNX8550 on the
    reference ATE; the contact yield is taken as ideal so the figure
    isolates the manufacturing-yield effect, as in the paper.
    """
    if not manufacturing_yields or not site_sweep:
        raise ConfigurationError("yields and site sweep must not be empty")
    soc = soc or make_pnx8550()
    ate = ate or reference_ate(channels=512, depth_m=7)
    probe_station = probe_station or reference_probe_station()

    design = optimize_scenario(
        engine, soc, ate, probe_station, OptimizationConfig(broadcast=False)
    )
    timing = timing_for(design.step1.architecture, ate, probe_station)
    terminals = design.step1.channels_per_site

    series_by_yield: dict[float, Series] = {}
    for manufacturing_yield in manufacturing_yields:
        points = []
        for sites in site_sweep:
            test_time = abort_on_fail_test_time(
                timing,
                contact_yield=1.0,
                manufacturing_yield=manufacturing_yield,
                terminals_per_site=terminals,
                sites=sites,
            )
            points.append((float(sites), test_time))
        series_by_yield[manufacturing_yield] = Series(
            name=f"p_m={manufacturing_yield:g}",
            x_label="number of sites",
            y_label="test application time (s)",
            points=tuple(points),
        )
    return Figure7bResult(
        series_by_yield=series_by_yield,
        full_test_time_s=timing.test_time_s,
    )


def summarize_figure7(figure7a: Figure7aResult, figure7b: Figure7bResult) -> str:
    """Human-readable summary used by the CLI and EXPERIMENTS.md."""
    best_yield = max(figure7a.contact_yields)
    worst_yield = min(figure7a.contact_yields)
    best = figure7a.series(best_yield)
    worst = figure7a.series(worst_yield)
    lowest_yield = min(figure7b.manufacturing_yields)
    low_series = figure7b.series(lowest_yield)
    lines = [
        "Figure 7 -- re-test and abort-on-fail effects (PNX8550)",
        f"  (a) at the shallowest depth, D^u_th drops from {best.ys[0]:.0f}/h "
        f"(p_c={best_yield:g}) to {worst.ys[0]:.0f}/h (p_c={worst_yield:g}); "
        f"at the deepest depth the drop is only "
        f"{best.ys[-1]:.0f}/h -> {worst.ys[-1]:.0f}/h",
        f"  (b) at p_m={lowest_yield:g}, abort-on-fail saves "
        f"{(1 - low_series.ys[0] / figure7b.full_test_time_s) * 100:.0f}% of the test time "
        f"single-site but only "
        f"{(1 - low_series.ys[-1] / figure7b.full_test_time_s) * 100:.1f}% at "
        f"{low_series.xs[-1]:.0f} sites",
    ]
    return "\n".join(lines)


def render_figure7(result: "tuple[Figure7aResult, Figure7bResult]") -> str:
    """Full CLI output of the figure7 experiment (both panels)."""
    figure7a, figure7b = result
    return "\n".join(
        [
            summarize_figure7(figure7a, figure7b),
            "",
            series_table([figure7a.series(y) for y in figure7a.contact_yields]),
            "",
            series_table([figure7b.series(y) for y in figure7b.manufacturing_yields]),
        ]
    )


@register_experiment(
    "figure7",
    title="Figure 7 -- re-test and abort-on-fail effects (PNX8550)",
    render=render_figure7,
)
def _figure7_experiment(engine: Engine) -> "tuple[Figure7aResult, Figure7bResult]":
    return run_figure7a(engine=engine), run_figure7b(engine=engine)
