"""Ablation studies of the reproduction's own design choices.

DESIGN.md calls out two algorithmic choices that are not uniquely pinned
down by the paper's text and therefore deserve an ablation:

1. **Step-1 placement criterion** -- when a module fits no existing channel
   group, the paper compares "open a new group" against "widen an existing
   group" and speaks both of criterion 1 (minimise channels) having priority
   and of keeping the option with the most free memory.  The reproduction
   applies the fewest-additional-channels rule first and uses free memory as
   the tie-breaker; the ablation runs the alternative (free memory first) and
   shows it inflates the channel count -- and therefore reduces the maximum
   multi-site -- on every benchmark.
2. **Wrapper-chain partitioning heuristic** -- COMBINE takes the better of
   LPT and BFD.  The ablation quantifies how often each heuristic alone is
   optimal and how much COMBINE gains.

Both studies run on the ITC'02 benchmarks and are exposed as benchmark
targets in ``benchmarks/test_bench_ablation.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.api.engine import Engine
from repro.core.exceptions import ConfigurationError
from repro.core.units import kilo_vectors
from repro.experiments.registry import register_experiment
from repro.itc02.registry import TABLE1_BENCHMARKS, load_benchmark
from repro.reporting.tables import Table
from repro.soc.soc import Soc
from repro.tam.assignment import PLACEMENT_CRITERIA, design_architecture
from repro.wrapper.partition import bfd_partition, lpt_partition

#: Default per-benchmark (channels, depth in K vectors) operating points for
#: the placement ablation: the middle row of each paper Table-1 block.
DEFAULT_ABLATION_POINTS: Mapping[str, tuple[int, int]] = {
    "d695": (256, 88),
    "p22810": (512, 704),
    "p34392": (512, 1408),
    "p93791": (512, 2304),
}


@dataclass(frozen=True)
class PlacementAblationRow:
    """Step-1 outcome of both placement criteria on one benchmark."""

    soc_name: str
    channels: int
    depth: int
    channels_by_criterion: Mapping[str, int]
    test_time_by_criterion: Mapping[str, int]

    @property
    def paper_rule_channels(self) -> int:
        """Channel count of the paper's fewest-channels-first rule."""
        return self.channels_by_criterion["fewest-channels"]

    @property
    def ablated_channels(self) -> int:
        """Channel count when free memory is prioritised unconditionally."""
        return self.channels_by_criterion["most-free-memory"]

    @property
    def channel_inflation(self) -> float:
        """Relative channel overhead of the ablated rule."""
        return self.ablated_channels / self.paper_rule_channels - 1.0


@dataclass(frozen=True)
class PlacementAblationResult:
    """Placement-criterion ablation over a set of benchmarks."""

    rows: tuple[PlacementAblationRow, ...]

    def to_table(self) -> Table:
        """Render the comparison as a table."""
        table = Table(
            title="Step-1 placement-criterion ablation",
            columns=["SOC", "depth", "k (paper rule)", "k (free-memory rule)", "inflation"],
        )
        for row in self.rows:
            table.add_row(
                [
                    row.soc_name,
                    row.depth,
                    row.paper_rule_channels,
                    row.ablated_channels,
                    f"{row.channel_inflation * 100:.0f}%",
                ]
            )
        return table

    @property
    def mean_inflation(self) -> float:
        """Average relative channel overhead of the ablated rule."""
        if not self.rows:
            return 0.0
        return sum(row.channel_inflation for row in self.rows) / len(self.rows)


def run_placement_ablation(
    points: Mapping[str, tuple[int, int]] | None = None,
) -> PlacementAblationResult:
    """Run the placement-criterion ablation on the ITC'02 benchmarks.

    ``points`` maps benchmark name to ``(ATE channels, depth in K vectors)``;
    it defaults to :data:`DEFAULT_ABLATION_POINTS`.
    """
    points = dict(points) if points is not None else dict(DEFAULT_ABLATION_POINTS)
    if not points:
        raise ConfigurationError("ablation needs at least one benchmark operating point")

    rows = []
    for soc_name, (channels, depth_k) in points.items():
        soc = load_benchmark(soc_name)
        depth = kilo_vectors(depth_k)
        channel_counts: dict[str, int] = {}
        test_times: dict[str, int] = {}
        for criterion in PLACEMENT_CRITERIA:
            architecture = design_architecture(
                soc, channels, depth, placement_criterion=criterion
            )
            channel_counts[criterion] = architecture.ate_channels
            test_times[criterion] = architecture.test_time_cycles
        rows.append(
            PlacementAblationRow(
                soc_name=soc_name,
                channels=channels,
                depth=depth,
                channels_by_criterion=channel_counts,
                test_time_by_criterion=test_times,
            )
        )
    return PlacementAblationResult(rows=tuple(rows))


@dataclass(frozen=True)
class WrapperAblationResult:
    """Comparison of LPT, BFD and COMBINE on a set of modules and widths."""

    soc_name: str
    widths: tuple[int, ...]
    cases: int
    lpt_wins: int
    bfd_wins: int
    ties: int
    lpt_excess_makespan: float
    bfd_excess_makespan: float

    @property
    def combine_never_worse(self) -> bool:
        """COMBINE equals the better heuristic by construction."""
        return self.lpt_wins + self.bfd_wins + self.ties == self.cases

    def to_table(self) -> Table:
        """Render the comparison as a table."""
        table = Table(
            title=f"Wrapper-partitioning ablation ({self.soc_name})",
            columns=["cases", "LPT strictly better", "BFD strictly better", "ties",
                     "LPT excess makespan", "BFD excess makespan"],
        )
        table.add_row(
            [
                self.cases,
                self.lpt_wins,
                self.bfd_wins,
                self.ties,
                f"{self.lpt_excess_makespan * 100:.2f}%",
                f"{self.bfd_excess_makespan * 100:.2f}%",
            ]
        )
        return table


def run_wrapper_ablation(
    soc: Soc | None = None,
    widths: Sequence[int] = (2, 3, 4, 6, 8, 12, 16, 24, 32),
) -> WrapperAblationResult:
    """Compare LPT and BFD scan-chain partitioning over a benchmark's modules.

    For every (module, width) pair with at least two scan chains, both
    heuristics partition the internal scan chains; the study counts strict
    wins and measures the average makespan excess of each heuristic relative
    to the better one (which is what COMBINE uses).

    ``widths`` is validated before the default SOC is pulled from the
    benchmark registry, so a bad width list always surfaces as a
    :class:`ConfigurationError` rather than as a benchmark-loading failure.
    """
    if not widths:
        raise ConfigurationError("width list must not be empty")
    invalid = [width for width in widths if width <= 0]
    if invalid:
        raise ConfigurationError(f"wrapper widths must be positive, got {invalid}")
    soc = soc or load_benchmark("p93791")

    cases = 0
    lpt_wins = 0
    bfd_wins = 0
    ties = 0
    lpt_excess = 0.0
    bfd_excess = 0.0
    for module in soc.modules:
        sizes = list(module.scan_lengths)
        if len(sizes) < 2:
            continue
        for width in widths:
            bins = min(width, len(sizes))
            lpt = lpt_partition(sizes, bins).makespan
            bfd = bfd_partition(sizes, bins).makespan
            best = min(lpt, bfd)
            if best == 0:
                continue
            cases += 1
            if lpt < bfd:
                lpt_wins += 1
            elif bfd < lpt:
                bfd_wins += 1
            else:
                ties += 1
            lpt_excess += lpt / best - 1.0
            bfd_excess += bfd / best - 1.0

    if cases == 0:
        raise ConfigurationError("the SOC has no multi-chain modules to ablate")
    return WrapperAblationResult(
        soc_name=soc.name,
        widths=tuple(widths),
        cases=cases,
        lpt_wins=lpt_wins,
        bfd_wins=bfd_wins,
        ties=ties,
        lpt_excess_makespan=lpt_excess / cases,
        bfd_excess_makespan=bfd_excess / cases,
    )


def render_ablation(
    result: "tuple[PlacementAblationResult, WrapperAblationResult]",
) -> str:
    """Full output of the ablation experiment (both studies)."""
    placement, wrapper = result
    return "\n".join(
        [
            placement.to_table().render(),
            f"mean channel inflation of the free-memory rule: "
            f"{placement.mean_inflation * 100:.0f}%",
            "",
            wrapper.to_table().render(),
        ]
    )


@register_experiment(
    "ablation",
    title="Ablations -- placement criterion and wrapper partitioning",
    render=render_ablation,
)
def _ablation_experiment(
    engine: Engine,
) -> "tuple[PlacementAblationResult, WrapperAblationResult]":
    return run_placement_ablation(), run_wrapper_ablation()
