"""Run every paper experiment and collect the results in one report.

``python -m repro all`` (and EXPERIMENTS.md regeneration) uses this module:
it runs Figure 5, Figure 6, Figure 7(a)/(b), Table 1 and the economics
comparison with the paper's default parameters and renders one plain-text
report.  Individual experiments can also be run through their own modules or
CLI sub-commands when only one artefact is needed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.economics import EconomicsResult, run_economics, summarize_economics
from repro.experiments.figure5 import Figure5Result, run_figure5, summarize_figure5
from repro.experiments.figure6 import Figure6Result, run_figure6, summarize_figure6
from repro.experiments.figure7 import (
    Figure7aResult,
    Figure7bResult,
    run_figure7a,
    run_figure7b,
    summarize_figure7,
)
from repro.experiments.table1 import Table1Result, run_table1, summarize_table1
from repro.reporting.series import series_table


@dataclass(frozen=True)
class ExperimentReport:
    """All regenerated paper artefacts."""

    figure5: Figure5Result
    figure6: Figure6Result
    figure7a: Figure7aResult
    figure7b: Figure7bResult
    table1: Table1Result
    economics: EconomicsResult

    def render(self) -> str:
        """Render the full report as plain text."""
        sections = [
            summarize_figure5(self.figure5),
            "",
            series_table(
                [
                    self.figure5.throughput_broadcast,
                ]
            ),
            "",
            summarize_figure6(self.figure6),
            "",
            summarize_figure7(self.figure7a, self.figure7b),
            "",
            summarize_table1(self.table1),
        ]
        for name in self.table1.benchmarks:
            sections.append("")
            sections.append(self.table1.to_table(name).render())
        sections.append("")
        sections.append(self.economics.to_table().render())
        sections.append(summarize_economics(self.economics))
        return "\n".join(sections)


def run_all_experiments() -> ExperimentReport:
    """Run every experiment with the paper's default parameters.

    This is a long-running call (several minutes on a laptop): every figure
    point re-runs the full two-step optimisation on the synthetic PNX8550.
    """
    return ExperimentReport(
        figure5=run_figure5(),
        figure6=run_figure6(),
        figure7a=run_figure7a(),
        figure7b=run_figure7b(),
        table1=run_table1(),
        economics=run_economics(),
    )
