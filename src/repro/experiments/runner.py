"""Run every paper experiment and collect the results in one report.

``python -m repro all`` (and EXPERIMENTS.md regeneration) uses this module.
The experiments themselves live in the :mod:`repro.experiments.registry`:
each experiment module registers its runner, and :func:`run_all_experiments`
iterates the registry through one shared :class:`~repro.api.engine.Engine`,
so operating points that several experiments revisit (e.g. the reference
PNX8550 design) are optimised once and then served from the engine cache.
Individual experiments can also be run through their own modules, through
:func:`repro.experiments.registry.run_experiment`, or through the CLI
sub-commands when only one artefact is needed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.engine import Engine
from repro.experiments.economics import EconomicsResult, summarize_economics
from repro.experiments.figure5 import Figure5Result, summarize_figure5
from repro.experiments.figure6 import Figure6Result, summarize_figure6
from repro.experiments.figure7 import Figure7aResult, Figure7bResult, summarize_figure7
from repro.experiments.registry import run_experiments
from repro.experiments.table1 import Table1Result, summarize_table1
from repro.reporting.series import series_table

#: Registered experiments that make up the full report, in report order.
REPORT_EXPERIMENTS = ("figure5", "figure6", "figure7", "table1", "economics")


@dataclass(frozen=True)
class ExperimentReport:
    """All regenerated paper artefacts."""

    figure5: Figure5Result
    figure6: Figure6Result
    figure7a: Figure7aResult
    figure7b: Figure7bResult
    table1: Table1Result
    economics: EconomicsResult

    def render(self) -> str:
        """Render the full report as plain text."""
        sections = [
            summarize_figure5(self.figure5),
            "",
            series_table(
                [
                    self.figure5.throughput_broadcast,
                ]
            ),
            "",
            summarize_figure6(self.figure6),
            "",
            summarize_figure7(self.figure7a, self.figure7b),
            "",
            summarize_table1(self.table1),
        ]
        for name in self.table1.benchmarks:
            sections.append("")
            sections.append(self.table1.to_table(name).render())
        sections.append("")
        sections.append(self.economics.to_table().render())
        sections.append(summarize_economics(self.economics))
        return "\n".join(sections)


def run_all_experiments(engine: Engine | None = None) -> ExperimentReport:
    """Run every report experiment from the registry through one engine.

    This is a long-running call (several minutes on a laptop): every figure
    point re-runs the full two-step optimisation on the synthetic PNX8550.
    The shared engine cache removes the operating points that experiments
    have in common, but the bulk of the sweeps remains unique.
    """
    results = run_experiments(REPORT_EXPERIMENTS, engine if engine is not None else Engine())
    figure7a, figure7b = results["figure7"]
    return ExperimentReport(
        figure5=results["figure5"],
        figure6=results["figure6"],
        figure7a=figure7a,
        figure7b=figure7b,
        table1=results["table1"],
        economics=results["economics"],
    )
