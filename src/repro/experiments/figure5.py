"""Figure 5: throughput versus number of sites for the PNX8550.

The paper's Figure 5 illustrates the two-step algorithm on the Philips
PNX8550 with the reference test cell (512 ATE channels, 7 M vectors per
channel, 5 MHz test clock, 0.5 s index time, 10 ms contact test):

* without stimuli broadcast, Step 1 already yields the optimal site count;
* with stimuli broadcast, Step 1's maximum multi-site is *not* optimal --
  giving up sites and redistributing the freed channels (Step 2) increases
  the throughput;
* a dashed reference line shows the throughput of Step 1 alone at every
  site count; when the usable multi-site is limited by equipment, Step 1+2
  clearly beats Step 1 only (the paper quotes +34% at 8 sites).

This module regenerates those three curves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.engine import Engine, optimize_scenario
from repro.ate.probe_station import ProbeStation, reference_probe_station
from repro.ate.spec import AteSpec, reference_ate
from repro.experiments.registry import register_experiment
from repro.optimize.config import OptimizationConfig
from repro.optimize.result import TwoStepResult
from repro.optimize.step2 import step1_only_throughput
from repro.reporting.series import Series, series_table
from repro.soc.pnx8550 import make_pnx8550
from repro.soc.soc import Soc


@dataclass(frozen=True)
class Figure5Result:
    """Regenerated data of Figure 5."""

    no_broadcast: TwoStepResult
    broadcast: TwoStepResult
    throughput_no_broadcast: Series
    throughput_broadcast: Series
    step1_only_broadcast: Series

    @property
    def step2_gain_at_limit(self) -> float:
        """Relative gain of Step 1+2 over Step 1 alone at an 8-site limit.

        Mirrors the paper's example: if equipment limits the multi-site to 8,
        the two-step flow delivers substantially more throughput than the
        Step-1-only design evaluated at 8 sites.
        """
        limit = min(8, self.broadcast.max_sites)
        return self.broadcast.gain_over_step1(site_limit=limit)


def run_figure5(
    soc: Soc | None = None,
    ate: AteSpec | None = None,
    probe_station: ProbeStation | None = None,
    engine: Engine | None = None,
) -> Figure5Result:
    """Regenerate Figure 5 (optionally on a different SOC / test cell)."""
    soc = soc or make_pnx8550()
    ate = ate or reference_ate(channels=512, depth_m=7)
    probe_station = probe_station or reference_probe_station()

    no_broadcast = optimize_scenario(
        engine, soc, ate, probe_station, OptimizationConfig(broadcast=False)
    )
    broadcast = optimize_scenario(
        engine, soc, ate, probe_station, OptimizationConfig(broadcast=True)
    )

    def points_of(result: TwoStepResult) -> tuple[tuple[float, float], ...]:
        ordered = sorted(result.points, key=lambda point: point.sites)
        return tuple((float(point.sites), point.throughput) for point in ordered)

    step1_points = tuple(
        (float(sites), step1_only_throughput(broadcast.step1, sites))
        for sites in range(1, broadcast.max_sites + 1)
    )

    return Figure5Result(
        no_broadcast=no_broadcast,
        broadcast=broadcast,
        throughput_no_broadcast=Series(
            name="step1+2, no broadcast",
            x_label="sites",
            y_label="devices/hour",
            points=points_of(no_broadcast),
        ),
        throughput_broadcast=Series(
            name="step1+2, broadcast",
            x_label="sites",
            y_label="devices/hour",
            points=points_of(broadcast),
        ),
        step1_only_broadcast=Series(
            name="step1 only, broadcast",
            x_label="sites",
            y_label="devices/hour",
            points=step1_points,
        ),
    )


def summarize_figure5(result: Figure5Result) -> str:
    """Human-readable summary used by the CLI and EXPERIMENTS.md."""
    lines = [
        "Figure 5 -- PNX8550 throughput vs number of sites",
        f"  no broadcast : n_max={result.no_broadcast.max_sites}, "
        f"n_opt={result.no_broadcast.optimal_sites}, "
        f"D_th={result.no_broadcast.optimal_throughput:.0f}/h",
        f"  broadcast    : n_max={result.broadcast.max_sites}, "
        f"n_opt={result.broadcast.optimal_sites}, "
        f"D_th={result.broadcast.optimal_throughput:.0f}/h",
        f"  step1+2 gain over step1-only at an 8-site limit: "
        f"{result.step2_gain_at_limit * 100:.0f}%",
    ]
    return "\n".join(lines)


def render_figure5(result: Figure5Result) -> str:
    """Full CLI output of the figure5 experiment."""
    return "\n".join(
        [
            summarize_figure5(result),
            "",
            series_table([result.throughput_broadcast]),
            "",
            series_table([result.step1_only_broadcast]),
        ]
    )


@register_experiment(
    "figure5",
    title="Figure 5 -- PNX8550 throughput vs number of sites",
    render=render_figure5,
)
def _figure5_experiment(engine: Engine) -> Figure5Result:
    return run_figure5(engine=engine)
