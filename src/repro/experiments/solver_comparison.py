"""Solver back-off: goel05 vs. restart vs. exhaustive on the ITC'02 set.

The solver registry (:mod:`repro.solvers`) makes the optimisation strategy a
scenario dimension; this experiment quantifies what that dimension buys:

* on **d695-derived small instances** (the first few cores of the published
  d695 benchmark) every backend runs, including the ``"exhaustive"``
  partition-enumeration oracle -- validating that the paper's greedy
  heuristic finds the true optimum there (or reporting its gap);
* on the **full ITC'02 benchmarks** (at each benchmark's Table-1 operating
  point) the scalable backends compete: the deterministic paper order
  (``"goel05"``) against the randomized multi-start (``"restart"``) and
  the Metropolis local search (``"simulated_annealing"``).

All runs are expanded with :meth:`Scenario.sweep`'s ``solvers`` axis and
executed as one engine batch, so shared operating points are cached and the
whole comparison parallelises like any other sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.api.engine import Engine
from repro.api.scenario import Scenario
from repro.api.testcell import TestCell
from repro.ate.spec import AteSpec
from repro.core.exceptions import ConfigurationError
from repro.core.units import kilo_vectors
from repro.experiments.registry import register_experiment
from repro.experiments.table1 import DEFAULT_ATE_CHANNELS, DEFAULT_DEPTH_GRIDS_K
from repro.itc02.registry import TABLE1_BENCHMARKS, load_benchmark
from repro.reporting.tables import Table
from repro.soc.soc import Soc
from repro.solvers.registry import DEFAULT_SOLVER

#: Module counts of the d695-derived small instances the oracle can handle.
SMALL_INSTANCE_SIZES = (3, 4, 5)

#: Backends compared on the full benchmarks (exhaustive cannot scale there).
GREEDY_SOLVERS = (DEFAULT_SOLVER, "restart", "simulated_annealing")

#: Backends compared on the small instances, oracle included.
ORACLE_SOLVERS = (DEFAULT_SOLVER, "restart", "simulated_annealing", "exhaustive")

#: Test cell of the small-instance comparison: modest enough that the
#: oracle's site sweeps stay cheap, rich enough for multi-site trade-offs.
SMALL_INSTANCE_CHANNELS = 64
SMALL_INSTANCE_DEPTH = 200_000


def derived_small_socs(sizes: Sequence[int] = SMALL_INSTANCE_SIZES) -> tuple[Soc, ...]:
    """Sub-SOCs of the published d695 benchmark (its first ``k`` cores)."""
    d695 = load_benchmark("d695")
    socs = []
    for size in sizes:
        if not 1 <= size <= len(d695.modules):
            raise ConfigurationError(
                f"d695 sub-SOC size must be within [1, {len(d695.modules)}], got {size}"
            )
        socs.append(Soc(name=f"d695-{size}", modules=d695.modules[:size]))
    return tuple(socs)


@dataclass(frozen=True)
class SolverRow:
    """One (instance, solver) outcome of the comparison."""

    soc_name: str
    solver: str
    channels_per_site: int
    max_sites: int
    optimal_sites: int
    throughput: float


@dataclass(frozen=True)
class SolverComparisonResult:
    """Outcome of the solver comparison over all instances."""

    rows: tuple[SolverRow, ...]
    oracle_instances: tuple[str, ...]

    @property
    def instances(self) -> tuple[str, ...]:
        """Instance names present, in first-appearance order."""
        seen: list[str] = []
        for row in self.rows:
            if row.soc_name not in seen:
                seen.append(row.soc_name)
        return tuple(seen)

    def rows_for(self, soc_name: str) -> tuple[SolverRow, ...]:
        """Rows of one instance, in run order."""
        return tuple(row for row in self.rows if row.soc_name == soc_name)

    def row(self, soc_name: str, solver: str) -> SolverRow:
        """The row of one solver on one instance."""
        for candidate in self.rows:
            if candidate.soc_name == soc_name and candidate.solver == solver:
                return candidate
        raise KeyError(f"no row for solver {solver!r} on {soc_name!r}")

    def best_throughput(self, soc_name: str) -> float:
        """Best objective value any solver reached on an instance."""
        return max(row.throughput for row in self.rows_for(soc_name))

    def gap(self, row: SolverRow) -> float:
        """Relative shortfall of a row against the instance's best solver."""
        best = self.best_throughput(row.soc_name)
        if best <= 0:
            return 0.0
        return 1.0 - row.throughput / best

    @property
    def oracle_agreements(self) -> tuple[str, ...]:
        """Oracle instances where ``goel05`` matches the exhaustive optimum."""
        return tuple(
            name
            for name in self.oracle_instances
            if self.row(name, DEFAULT_SOLVER).throughput
            >= self.row(name, "exhaustive").throughput
        )

    def to_table(self) -> Table:
        """Render the comparison as a table."""
        table = Table(
            title="Solver comparison (ITC'02 set + d695-derived oracle instances)",
            columns=["SOC", "solver", "k", "n_max", "n_opt", "D_th (/h)", "gap"],
        )
        for name in self.instances:
            for row in self.rows_for(name):
                table.add_row(
                    [
                        row.soc_name,
                        row.solver,
                        row.channels_per_site,
                        row.max_sites,
                        row.optimal_sites,
                        round(row.throughput, 1),
                        f"{self.gap(row) * 100:.2f}%",
                    ]
                )
        return table


def _benchmark_cell(name: str) -> TestCell:
    """The Table-1 operating point of a benchmark (middle of its depth grid)."""
    grid = DEFAULT_DEPTH_GRIDS_K[name]
    depth_k = grid[len(grid) // 2]
    return TestCell(
        ate=AteSpec(
            channels=DEFAULT_ATE_CHANNELS[name],
            depth=kilo_vectors(depth_k),
            name=f"ate-{name}",
        )
    )


def run_solver_comparison(
    benchmarks: Sequence[str] = TABLE1_BENCHMARKS,
    small_sizes: Sequence[int] = SMALL_INSTANCE_SIZES,
    engine: Engine | None = None,
    workers: int | None = None,
) -> SolverComparisonResult:
    """Run every solver on every instance and collect the comparison rows.

    Parameters
    ----------
    benchmarks:
        Registered ITC'02 benchmarks for the greedy-only comparison.
    small_sizes:
        d695 sub-SOC sizes for the oracle comparison (each must stay within
        the exhaustive backend's module limit).
    engine:
        Shared engine; a fresh one is created when omitted.
    workers:
        Worker count for the batch execution (engine default when omitted).
    """
    if not benchmarks and not small_sizes:
        raise ConfigurationError("solver comparison needs at least one instance")
    engine = engine if engine is not None else Engine()

    scenarios: list[Scenario] = []
    small_socs = derived_small_socs(small_sizes) if small_sizes else ()
    if small_socs:
        oracle_cell = TestCell(
            ate=AteSpec(
                channels=SMALL_INSTANCE_CHANNELS,
                depth=SMALL_INSTANCE_DEPTH,
                name="ate-oracle",
            )
        )
        scenarios.extend(
            Scenario.sweep(small_socs, oracle_cell, solvers=ORACLE_SOLVERS)
        )
    for name in benchmarks:
        scenarios.extend(
            Scenario.sweep(name, _benchmark_cell(name), solvers=GREEDY_SOLVERS)
        )

    results = engine.run_batch(scenarios, workers=workers)
    rows = tuple(
        SolverRow(
            soc_name=outcome.soc_name,
            solver=outcome.scenario.solver,
            channels_per_site=outcome.step1.channels_per_site,
            max_sites=outcome.step1.max_sites,
            optimal_sites=outcome.optimal_sites,
            throughput=outcome.optimal_throughput,
        )
        for outcome in results
    )
    return SolverComparisonResult(
        rows=rows, oracle_instances=tuple(soc.name for soc in small_socs)
    )


def summarize_solver_comparison(result: SolverComparisonResult) -> str:
    """Human-readable summary used by the CLI and EXPERIMENTS.md."""
    lines = ["Solver comparison -- goel05 vs. restart vs. simulated_annealing vs. exhaustive"]
    if result.oracle_instances:
        agreed = result.oracle_agreements
        worst_gap = max(
            (result.gap(result.row(name, DEFAULT_SOLVER)) for name in result.oracle_instances),
            default=0.0,
        )
        lines.append(
            f"  goel05 matches the exhaustive optimum on {len(agreed)}/"
            f"{len(result.oracle_instances)} d695-derived instances "
            f"(worst gap {worst_gap * 100:.2f}%)"
        )
    greedy_instances = [
        name for name in result.instances if name not in result.oracle_instances
    ]
    if greedy_instances:
        wins = sum(
            1
            for name in greedy_instances
            if result.row(name, "restart").throughput
            > result.row(name, DEFAULT_SOLVER).throughput
        )
        lines.append(
            f"  restart strictly beats goel05 on {wins}/{len(greedy_instances)} "
            "full ITC'02 benchmarks (never worse by construction)"
        )
        sa_wins = sum(
            1
            for name in greedy_instances
            if result.row(name, "simulated_annealing").throughput
            > result.row(name, DEFAULT_SOLVER).throughput
        )
        lines.append(
            f"  simulated_annealing strictly beats goel05 on {sa_wins}/"
            f"{len(greedy_instances)} full ITC'02 benchmarks "
            "(never worse by construction)"
        )
    return "\n".join(lines)


def render_solver_comparison(result: SolverComparisonResult) -> str:
    """Full CLI output of the solver-comparison experiment."""
    return "\n".join(
        [
            result.to_table().render(),
            "",
            summarize_solver_comparison(result),
        ]
    )


@register_experiment(
    "solver_comparison",
    title="Solver backends -- goel05 / restart / simulated_annealing / exhaustive (ITC'02 set)",
    render=render_solver_comparison,
)
def _solver_comparison_experiment(engine: Engine) -> SolverComparisonResult:
    return run_solver_comparison(engine=engine)
