"""Section 7 economics: adding vector memory versus adding ATE channels.

The paper argues that, for the same money, deepening the ATE vector memory
buys more throughput than adding channels: doubling the memory of all 512
channels (7 M -> 14 M) costs about USD 48k and raises the PNX8550 throughput
by 27%, while spending the same on extra channels buys roughly 96 channels
and only 18% more throughput.  This experiment regenerates that comparison
for an arbitrary budget and pricing model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.engine import Engine, optimize_scenario
from repro.ate.pricing import AtePricing
from repro.ate.probe_station import ProbeStation, reference_probe_station
from repro.ate.spec import AteSpec, reference_ate
from repro.core.exceptions import ConfigurationError
from repro.experiments.registry import register_experiment
from repro.optimize.config import OptimizationConfig
from repro.reporting.tables import Table
from repro.soc.pnx8550 import make_pnx8550
from repro.soc.soc import Soc
from repro.solvers.registry import DEFAULT_SOLVER


@dataclass(frozen=True)
class UpgradeOption:
    """One evaluated ATE upgrade."""

    label: str
    ate: AteSpec
    cost_usd: float
    throughput: float

    def gain_over(self, baseline_throughput: float) -> float:
        """Relative throughput gain over the baseline ATE."""
        if baseline_throughput <= 0:
            return 0.0
        return self.throughput / baseline_throughput - 1.0


@dataclass(frozen=True)
class EconomicsResult:
    """Outcome of the memory-vs-channels upgrade comparison."""

    baseline: UpgradeOption
    memory_upgrade: UpgradeOption
    channel_upgrade: UpgradeOption

    @property
    def memory_gain(self) -> float:
        """Relative gain of the memory upgrade."""
        return self.memory_upgrade.gain_over(self.baseline.throughput)

    @property
    def channel_gain(self) -> float:
        """Relative gain of the equally priced channel upgrade."""
        return self.channel_upgrade.gain_over(self.baseline.throughput)

    @property
    def memory_wins(self) -> bool:
        """True when the memory upgrade yields more throughput per dollar."""
        return self.memory_gain >= self.channel_gain

    def to_table(self) -> Table:
        """Render the comparison as a table."""
        table = Table(
            title="ATE upgrade economics (PNX8550)",
            columns=["option", "channels", "depth (vectors)", "cost (USD)", "D_th (/h)", "gain"],
        )
        for option in (self.baseline, self.memory_upgrade, self.channel_upgrade):
            table.add_row(
                [
                    option.label,
                    option.ate.channels,
                    option.ate.depth,
                    round(option.cost_usd),
                    round(option.throughput),
                    f"{option.gain_over(self.baseline.throughput) * 100:.0f}%",
                ]
            )
        return table


def run_economics(
    soc: Soc | None = None,
    base_ate: AteSpec | None = None,
    probe_station: ProbeStation | None = None,
    pricing: AtePricing | None = None,
    depth_factor: float = 2.0,
    config: OptimizationConfig | None = None,
    engine: Engine | None = None,
    solver: str = DEFAULT_SOLVER,
) -> EconomicsResult:
    """Compare deepening the memory by ``depth_factor`` against buying channels.

    The channel option spends exactly the memory upgrade's budget on extra
    channels (rounded down to the pricing block granularity of one channel).
    Every upgrade option is sized by the same ``solver`` backend, so the
    comparison stays apples-to-apples whichever strategy is selected.
    """
    if depth_factor <= 1.0:
        raise ConfigurationError(f"depth factor must exceed 1, got {depth_factor}")
    soc = soc or make_pnx8550()
    base_ate = base_ate or reference_ate(channels=512, depth_m=7)
    probe_station = probe_station or reference_probe_station()
    pricing = pricing or AtePricing()
    config = config or OptimizationConfig(broadcast=False)

    baseline_result = optimize_scenario(engine, soc, base_ate, probe_station, config, solver)
    baseline = UpgradeOption(
        label="baseline",
        ate=base_ate,
        cost_usd=0.0,
        throughput=baseline_result.optimal_throughput,
    )

    deep_ate = base_ate.with_depth(int(round(base_ate.depth * depth_factor)))
    memory_cost = pricing.memory_upgrade_cost(base_ate, deep_ate.depth)
    memory_result = optimize_scenario(engine, soc, deep_ate, probe_station, config, solver)
    memory_option = UpgradeOption(
        label=f"deepen memory x{depth_factor:g}",
        ate=deep_ate,
        cost_usd=memory_cost,
        throughput=memory_result.optimal_throughput,
    )

    extra_channels = pricing.channels_for_budget(memory_cost)
    # Keep the channel count even so sites keep balanced stimulus/response.
    wide_ate = base_ate.with_channels(base_ate.channels + (extra_channels // 2) * 2)
    channel_result = optimize_scenario(engine, soc, wide_ate, probe_station, config, solver)
    channel_option = UpgradeOption(
        label=f"add {wide_ate.channels - base_ate.channels} channels",
        ate=wide_ate,
        cost_usd=pricing.channel_upgrade_cost(base_ate, wide_ate.channels - base_ate.channels),
        throughput=channel_result.optimal_throughput,
    )

    return EconomicsResult(
        baseline=baseline,
        memory_upgrade=memory_option,
        channel_upgrade=channel_option,
    )


def summarize_economics(result: EconomicsResult) -> str:
    """Human-readable summary used by the CLI and EXPERIMENTS.md."""
    return (
        "ATE upgrade economics -- "
        f"memory upgrade: +{result.memory_gain * 100:.0f}% throughput for "
        f"USD {result.memory_upgrade.cost_usd:.0f}; "
        f"channel upgrade: +{result.channel_gain * 100:.0f}% for "
        f"USD {result.channel_upgrade.cost_usd:.0f}; "
        f"memory {'wins' if result.memory_wins else 'loses'} per dollar"
    )


def render_economics(result: EconomicsResult) -> str:
    """Full CLI output of the economics experiment."""
    return "\n".join(
        [
            result.to_table().render(),
            "",
            summarize_economics(result),
        ]
    )


@register_experiment(
    "economics",
    title="Section 7 -- ATE upgrade economics (PNX8550)",
    render=render_economics,
)
def _economics_experiment(engine: Engine) -> EconomicsResult:
    return run_economics(engine=engine)
