"""Benchmark telemetry: timed runs that seed the perf trajectory.

``python -m repro bench`` (and :func:`~repro.bench.runner.run_bench`) times
the registered experiments, the registered solver backends, the d695
design-space sweep and the streaming campaign (cold vs
interrupted-and-resumed multi-SOC sweep, :mod:`repro.bench.campaign`) --
optionally against a persistent :class:`~repro.store.ResultStore`, so one
invocation measures the cold path and a rerun against the same directory
measures the warm (store-hit) path.  The outcome is written as
``BENCH_<tag>.json``, a machine-readable record that CI uploads as an
artifact on every push.  :func:`~repro.bench.runner.compare_reports`
(CLI: ``repro bench --compare PREV.json``) turns two such reports into a
regression summary; the committed ``BENCH_seed.json`` is the baseline the
perf trajectory accumulates against.
"""

from repro.bench.campaign import campaign_grid, run_campaign
from repro.bench.runner import (
    BENCH_FORMAT,
    bench_sweep_grid,
    compare_reports,
    default_tag,
    load_report,
    report_filename,
    results_digest,
    run_bench,
    summarize_report,
    sweep_digest,
    write_report,
)

__all__ = [
    "BENCH_FORMAT",
    "bench_sweep_grid",
    "campaign_grid",
    "compare_reports",
    "default_tag",
    "load_report",
    "report_filename",
    "results_digest",
    "run_bench",
    "run_campaign",
    "summarize_report",
    "sweep_digest",
    "write_report",
]
