"""Campaign-scale benchmark: streaming sweeps, interruption and resume.

:func:`run_campaign` measures the property the grid/``run_iter``/store
stack exists for -- that a killed campaign costs only its unfinished
scenarios.  Over a multi-SOC grid (a :func:`~repro.soc.catalog.
synthetic_family` sized by ``smoke``) it times three runs:

1. **cold** -- a fresh store-backed engine streams the full grid;
2. **interrupted** -- a second fresh store consumes only part of the
   stream and abandons the rest, exactly like a killed process (each
   finished scenario is already on disk at that point);
3. **resume** -- a new engine over the interrupted store streams the full
   grid again: the finished part is served from disk, only the remainder
   computes.

The resumed run must produce the same order-insensitive result digest as
the cold run (bit-identical values) and recompute only the abandoned
scenarios (asserted via the engine's store-hit count); because it skips
the finished majority it is several times faster than the cold run --
``benchmarks/test_bench_campaign.py`` pins the >= 2x floor.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any

from repro.api.engine import Engine
from repro.api.grid import SweepGrid
from repro.api.testcell import reference_test_cell
from repro.bench.runner import sweep_digest
from repro.core.exceptions import ConfigurationError
from repro.core.units import mega_vectors
from repro.soc.catalog import synthetic_family

#: Seed of the first family member the campaign sweeps.
CAMPAIGN_SEED = 4242

#: Family shape: (SOC count, modules per SOC) -- full and smoke variants.
CAMPAIGN_FAMILY = (6, 8)
SMOKE_FAMILY = (3, 5)

#: ATE channel axis of the campaign grid.
CAMPAIGN_CHANNELS = (128, 256)


def campaign_grid(smoke: bool = False) -> SweepGrid:
    """The synthetic-family grid the campaign benchmark streams.

    12 scenarios (6 SOCs x 2 channel counts) in full mode, 6 in smoke
    mode.  Depth is fixed at 1 M vectors -- comfortably feasible for the
    compact catalog synthetics at every channel count swept.
    """
    count, modules = SMOKE_FAMILY if smoke else CAMPAIGN_FAMILY
    return SweepGrid(
        synthetic_family(CAMPAIGN_SEED, count=count, modules=modules),
        reference_test_cell(),
        channels=CAMPAIGN_CHANNELS,
        depths=[mega_vectors(1.0)],
    )


def _stream(engine: Engine, grid: SweepGrid, limit: int | None = None) -> tuple[list, float]:
    """Consume ``grid`` through ``engine`` (at most ``limit`` results), timed."""
    results = []
    started = time.perf_counter()
    for record in engine.run_iter(grid):
        results.append(record)
        if limit is not None and len(results) >= limit:
            break
    return results, time.perf_counter() - started


def run_campaign(
    work_dir: str | Path, smoke: bool = False, workers: int | None = None
) -> dict[str, Any]:
    """Run the cold / interrupted / resumed campaign; return the JSON record.

    ``work_dir`` receives two store directories (``cold/``, ``resume/``);
    the caller owns cleanup (the bench runner uses a temp directory).
    """
    work_dir = Path(work_dir)
    grid = campaign_grid(smoke)
    total = len(grid)
    interrupt_after = max(1, (3 * total) // 4)
    if interrupt_after >= total:
        raise ConfigurationError("campaign grid too small to interrupt")

    # Every engine gets the same worker setting, so the reported speedup
    # measures resumption alone, not a parallelism difference.
    cold_engine = Engine(store=work_dir / "cold", workers=workers)
    cold_results, cold_seconds = _stream(cold_engine, grid)

    # A second cold store, abandoned after `interrupt_after` results --
    # the finished scenarios are on disk, the in-flight rest is lost.
    interrupted_engine = Engine(store=work_dir / "resume", workers=workers)
    interrupted_results, interrupted_seconds = _stream(
        interrupted_engine, grid, limit=interrupt_after
    )

    resume_engine = Engine(store=work_dir / "resume", workers=workers)
    resumed_results, resume_seconds = _stream(resume_engine, grid)
    resume_info = resume_engine.cache_info()

    cold_digest = sweep_digest(cold_results)
    resumed_digest = sweep_digest(resumed_results)
    return {
        "scenarios": total,
        "interrupted_after": len(interrupted_results),
        "cold_seconds": cold_seconds,
        "interrupted_seconds": interrupted_seconds,
        "resume_seconds": resume_seconds,
        "resume_store_hits": resume_info.store_hits,
        "resume_recomputed": resume_info.misses,
        "speedup": cold_seconds / resume_seconds if resume_seconds > 0 else float("inf"),
        "cold_digest": cold_digest,
        "resumed_digest": resumed_digest,
        "digests_match": cold_digest == resumed_digest,
    }
