"""Benchmark runner: machine-readable timings for the perf trajectory.

:func:`run_bench` times the three workloads that matter for the project's
performance story and returns one JSON-ready report:

* **experiments** -- every registered experiment
  (:mod:`repro.experiments.registry`), each through its own
  :class:`~repro.api.engine.Engine`;
* **solvers** -- every registered solver backend
  (:mod:`repro.solvers.registry`) on the reference d695 operating point
  (256 channels x 64 K vectors); backends that cannot handle the workload
  (e.g. the exhaustive oracle on a 10-module SOC) are recorded as skipped,
  not as failures;
* **sweep** -- the d695 design-space sweep (channels x depths x broadcast),
  the workload the persistent store amortises across runs;
* **fanout** -- the cold synthetic sweep through the process pool twice at
  the same worker count, chunked (the :class:`~repro.api.plan.SweepPlan`
  default) versus unchunked (``chunk_size=1``), in scenarios/second --
  isolating what the execution planner buys in pickle/IPC amortisation
  and worker-side kernel-memo locality, digests checked identical;
* **campaign** -- the streaming multi-SOC campaign
  (:mod:`repro.bench.campaign`): a cold sweep over a synthetic SOC family
  versus the same sweep interrupted partway and resumed from its store,
  recording the resume speedup and digest equality;
* **analysis** -- loading :class:`~repro.analysis.records.AnalysisRecord`
  rows from a generated packed store twice: cold full-record decode
  versus the columnar ``.cols`` sidecar scan
  (:mod:`repro.store.columns`), in rows/second, with the rendered
  ``records_table`` digests checked identical.

Every section records wall-clock seconds plus the engine's
:class:`~repro.api.engine.CacheInfo`, and the sweep section additionally
records the delta of the process-wide evaluation-kernel memo
(:func:`repro.solvers.evaluate.cache_info`) and a SHA-256 digest over the
exact result values -- two runs that report the same digest produced
bit-identical results, which is how a warm-store rerun proves it traded
no correctness for its speedup.

:func:`write_report` emits the report as ``BENCH_<tag>.json``; CI uploads
these files as artifacts, so every PR leaves a perf data point behind.
"""

from __future__ import annotations

import hashlib
import json
import platform
import tempfile
import time
from dataclasses import asdict
from pathlib import Path
from typing import Any, Sequence

from repro.api.engine import Engine, ScenarioResult
from repro.api.plan import AUTO_CHUNK, SweepPlan
from repro.api.scenario import Scenario
from repro.api.testcell import reference_test_cell
from repro.core.exceptions import ConfigurationError, ReproError
from repro.core.units import kilo_vectors
from repro.objectives.registry import DEFAULT_OBJECTIVE
from repro.experiments.registry import get_experiment, experiment_names
from repro.solvers import evaluate as evaluate_kernel
from repro.solvers.registry import solver_names
from repro.store.factory import open_store
from repro.store.result_store import ResultStore

#: Version of the report payload layout.
BENCH_FORMAT = 1

#: Registered experiments timed in ``--smoke`` mode (the fastest one).
SMOKE_EXPERIMENTS = ("economics",)

#: d695 sweep axes (depths in binary K vectors, the repo's convention):
#: full bench and smoke subset.
SWEEP_CHANNELS = (64, 128, 256, 512)
SWEEP_DEPTHS_K = (48, 64, 96, 128)
SMOKE_SWEEP_CHANNELS = (128, 256)
SMOKE_SWEEP_DEPTHS_K = (48, 64)

#: Synthetic cold-sweep axes (the batch kernel's showcase workload): a
#: deterministic synthetic SOC family swept over channels x depths (in
#: binary M vectors) x broadcast.  Full grid: 25 x 5 x 4 x 2 = 1000
#: scenarios; smoke grid: 2 x 2 x 2 x 2 = 16.
SYNTHETIC_SWEEP_SEED = 7000
SYNTHETIC_SWEEP_SOCS = 25
SYNTHETIC_SWEEP_MODULES = 10
SYNTHETIC_SWEEP_CHANNELS = (128, 192, 256, 320, 512)
SYNTHETIC_SWEEP_DEPTHS_M = (1.0, 2.0, 4.0, 8.0)
SMOKE_SYNTHETIC_SWEEP_SOCS = 2
SMOKE_SYNTHETIC_SWEEP_CHANNELS = (128, 256)
SMOKE_SYNTHETIC_SWEEP_DEPTHS_M = (1.0, 2.0)


def default_tag() -> str:
    """Default report tag: the package version (``v<x.y.z>``)."""
    from repro import __version__

    return f"v{__version__}"


def bench_sweep_grid(
    smoke: bool = False, objective: str = DEFAULT_OBJECTIVE
) -> list[Scenario]:
    """The d695 sweep scenarios the bench times (32 full, 4 in smoke mode).

    ``objective`` selects the registered objective the sweep optimises;
    the default keeps the scenarios (and their digests) exactly as before
    the objective axis existed.
    """
    cell = reference_test_cell(channels=256, depth_m=0.0625)
    if smoke:
        return Scenario.sweep(
            "d695",
            cell,
            channels=SMOKE_SWEEP_CHANNELS,
            depths=[kilo_vectors(depth) for depth in SMOKE_SWEEP_DEPTHS_K],
            objectives=objective,
        )
    return Scenario.sweep(
        "d695",
        cell,
        channels=SWEEP_CHANNELS,
        depths=[kilo_vectors(depth) for depth in SWEEP_DEPTHS_K],
        broadcast=[False, True],
        objectives=objective,
    )


def results_digest(results: Sequence[ScenarioResult]) -> str:
    """SHA-256 digest over the exact values of a batch of results.

    Covers every evaluated site point (``repr`` of the float objective, so
    the digest only matches on bit-identical numbers) plus the optimum, in
    scenario order.  Used to prove warm (store-served) runs reproduce cold
    runs exactly.
    """
    digest = hashlib.sha256()
    for outcome in results:
        digest.update(outcome.scenario.key.encode("utf-8"))
        for point in outcome.result.points:
            digest.update(
                f"{point.sites},{point.channels_per_site},{point.throughput!r};".encode("utf-8")
            )
        digest.update(
            f"opt={outcome.optimal_sites},{outcome.optimal_throughput!r}\n".encode("utf-8")
        )
    return digest.hexdigest()


def sweep_digest(results: Sequence[ScenarioResult]) -> str:
    """Order-insensitive digest over a sweep's exact result values.

    Sorts by scenario digest before hashing, so two runs over the same
    grid that finished in different orders (streaming yields in
    completion order; shards interleave) still compare equal exactly when
    their results are bit-identical.  This is the digest `repro sweep`
    prints and the campaign benchmark compares.
    """
    return results_digest(sorted(results, key=lambda record: record.scenario.digest))


def clear_computation_caches() -> None:
    """Drop every process-wide computation cache (kernel memo, wrapper caches).

    Cold-path timings are only meaningful when earlier work in the same
    process cannot leak in through the evaluation kernel's memo or the
    wrapper-design caches.  The bench's cold legs (and the store benchmark
    tests) call this before timing; persistent stores are untouched --
    store warmth is a property of the directory, not the process.
    The kernel's cumulative counters are kept -- dropping only the memo
    means the report's per-section counter deltas never go backwards.
    """
    from repro.wrapper import combine, pareto

    evaluate_kernel.drop_memo()
    combine._cached_test_time.cache_clear()
    pareto._cached_pareto.cache_clear()


def _cache_record(engine: Engine) -> dict[str, Any]:
    return asdict(engine.cache_info())


def _kernel_delta(
    before: "evaluate_kernel.KernelCacheInfo",
    after: "evaluate_kernel.KernelCacheInfo",
) -> dict[str, Any]:
    """Delta of the process-wide evaluation-kernel counters over one section."""
    return {
        "hits": after.hits - before.hits,
        "misses": after.misses - before.misses,
        "batch_calls": after.batch_calls - before.batch_calls,
        "batch_points": after.batch_points - before.batch_points,
        "max_batch": after.max_batch,
    }


def _bench_experiments(
    names: Sequence[str], store: ResultStore | None
) -> list[dict[str, Any]]:
    """Time each registered experiment through its own (store-backed) engine."""
    rows: list[dict[str, Any]] = []
    for name in names:
        experiment = get_experiment(name)
        engine = Engine(store=store)
        kernel_before = evaluate_kernel.cache_info()
        started = time.perf_counter()
        experiment.run(engine)
        seconds = time.perf_counter() - started
        rows.append(
            {
                "name": name,
                "title": experiment.title,
                "seconds": seconds,
                "cache": _cache_record(engine),
                "evaluate_kernel": _kernel_delta(kernel_before, evaluate_kernel.cache_info()),
            }
        )
    return rows


#: Smoke-sized annealing knobs for the solver-timing row: a short schedule
#: that keeps the bench leg cheap while still exercising the full backend.
SA_BENCH_KNOBS = {"temperature": 0.5, "cooling": 0.7, "moves_per_temp": 10}


def _bench_solvers(store: ResultStore | None) -> list[dict[str, Any]]:
    """Time each registered solver backend on the reference d695 point."""
    cell = reference_test_cell(channels=256, depth_m=0.0625)
    rows: list[dict[str, Any]] = []
    for name in solver_names():
        scenario = Scenario(soc="d695", test_cell=cell, solver=name)
        if name == "simulated_annealing":
            scenario = scenario.with_solver_options(**SA_BENCH_KNOBS)
        engine = Engine(store=store)
        kernel_before = evaluate_kernel.cache_info()
        started = time.perf_counter()
        try:
            outcome = engine.run(scenario)
        except ReproError as error:
            rows.append({"name": name, "skipped": str(error)})
            continue
        rows.append(
            {
                "name": name,
                "seconds": time.perf_counter() - started,
                "optimal_sites": outcome.optimal_sites,
                "optimal_throughput": outcome.optimal_throughput,
                "cache": _cache_record(engine),
                "evaluate_kernel": _kernel_delta(kernel_before, evaluate_kernel.cache_info()),
            }
        )
    return rows


def _bench_sweep(
    store: ResultStore | None,
    smoke: bool,
    workers: int | None,
    objective: str = DEFAULT_OBJECTIVE,
    chunk_size: "int | str" = AUTO_CHUNK,
    flush_every: int | None = None,
) -> dict[str, Any]:
    """Time the d695 design-space sweep (the store's showcase workload)."""
    grid = bench_sweep_grid(smoke, objective)
    kernel_before = evaluate_kernel.cache_info()
    engine = Engine(store=store, workers=workers)
    started = time.perf_counter()
    results = engine.run_batch(
        grid, workers=workers, chunk_size=chunk_size, flush_every=flush_every
    )
    seconds = time.perf_counter() - started
    return {
        "scenarios": len(grid),
        "objective": objective,
        "seconds": seconds,
        "cache": _cache_record(engine),
        "evaluate_kernel": _kernel_delta(kernel_before, evaluate_kernel.cache_info()),
        "digest": results_digest(results),
    }


def synthetic_sweep_grid(smoke: bool = False) -> list[Scenario]:
    """The cold synthetic sweep scenarios (1000 full, 16 in smoke mode)."""
    from repro.core.units import mega_vectors
    from repro.soc.catalog import synthetic_family

    cell = reference_test_cell()
    if smoke:
        socs = synthetic_family(
            SYNTHETIC_SWEEP_SEED, count=SMOKE_SYNTHETIC_SWEEP_SOCS,
            modules=SYNTHETIC_SWEEP_MODULES,
        )
        channels = SMOKE_SYNTHETIC_SWEEP_CHANNELS
        depths_m = SMOKE_SYNTHETIC_SWEEP_DEPTHS_M
    else:
        socs = synthetic_family(
            SYNTHETIC_SWEEP_SEED, count=SYNTHETIC_SWEEP_SOCS,
            modules=SYNTHETIC_SWEEP_MODULES,
        )
        channels = SYNTHETIC_SWEEP_CHANNELS
        depths_m = SYNTHETIC_SWEEP_DEPTHS_M
    return Scenario.sweep(
        socs,
        cell,
        channels=channels,
        depths=[mega_vectors(depth) for depth in depths_m],
        broadcast=[False, True],
    )


def _bench_synthetic_sweep(
    smoke: bool,
    workers: int | None,
    chunk_size: "int | str" = AUTO_CHUNK,
) -> dict[str, Any]:
    """Time the synthetic cold sweep (the batch kernel's showcase workload).

    Unlike the d695 sweep this section is always *cold*: the process-wide
    computation caches are dropped first and no store is attached, so the
    number measures raw solver + kernel throughput, run to run.
    """
    grid = synthetic_sweep_grid(smoke)
    clear_computation_caches()
    kernel_before = evaluate_kernel.cache_info()
    engine = Engine(workers=workers)
    started = time.perf_counter()
    results = engine.run_batch(grid, workers=workers, chunk_size=chunk_size)
    seconds = time.perf_counter() - started
    return {
        "scenarios": len(grid),
        "seconds": seconds,
        "cache": _cache_record(engine),
        "evaluate_kernel": _kernel_delta(kernel_before, evaluate_kernel.cache_info()),
        "digest": results_digest(results),
    }


#: Pool size of the ``fanout`` section when ``--workers`` is not given:
#: small in smoke mode (CI containers), the tentpole's 4-worker target
#: otherwise.
FANOUT_WORKERS = 4
SMOKE_FANOUT_WORKERS = 2


def _bench_fanout(
    smoke: bool,
    workers: int | None,
    chunk_size: "int | str" = AUTO_CHUNK,
) -> dict[str, Any]:
    """Chunked vs unchunked cold fan-out over the synthetic sweep.

    Runs the cold synthetic grid through the process pool twice at the
    same worker count -- once at ``chunk_size=1`` (the pre-planner
    scenario-per-task protocol) and once at the planned ``chunk_size``
    (default ``"auto"``) -- recording scenarios/second for each leg.  The
    ratio isolates exactly what the execution planner buys: pickle/IPC
    amortisation and per-worker kernel-memo locality, with the digest
    equality check proving the speedup changed no result bits.
    """
    grid = synthetic_sweep_grid(smoke)
    pool_workers = workers if workers is not None else (
        SMOKE_FANOUT_WORKERS if smoke else FANOUT_WORKERS
    )
    runs: list[dict[str, Any]] = []
    digests: list[str] = []
    for chunk in (1, chunk_size):
        plan = SweepPlan.build(grid, chunk_size=chunk, workers=pool_workers)
        clear_computation_caches()
        engine = Engine()
        started = time.perf_counter()
        results = engine.run_batch(grid, workers=pool_workers, chunk_size=chunk)
        seconds = time.perf_counter() - started
        digest = results_digest(results)
        digests.append(digest)
        runs.append(
            {
                "workers": pool_workers,
                "chunk_size": str(chunk),
                "resolved_chunk_size": plan.chunk_size,
                "chunks": len(plan),
                "structure_groups": plan.groups,
                "scenarios": len(grid),
                "seconds": seconds,
                "scenarios_per_second": len(grid) / seconds if seconds > 0 else 0.0,
                "digest": digest,
            }
        )
    return {
        "scenarios": len(grid),
        "runs": runs,
        "digests_identical": len(set(digests)) == 1,
    }


#: Packed-store record counts of the ``analysis`` section (replicated from
#: a handful of genuinely solved scenarios).  The full count satisfies the
#: >= 10k-record shape the sidecar-vs-decode comparison is specified at.
ANALYSIS_BENCH_RECORDS = 12000
SMOKE_ANALYSIS_BENCH_RECORDS = 1500
#: How many smoke synthetic scenarios seed the replicated store.
ANALYSIS_BENCH_BASE_SCENARIOS = 6


def _bench_analysis(smoke: bool) -> dict[str, Any]:
    """Cold full-record decode vs columnar sidecar scan over a packed store.

    Builds a throwaway packed store by solving a few small synthetic
    scenarios and replicating their records under distinct keys (the
    payloads stay real, so the decode leg pays real decode cost), then
    times ``records_from_store`` both ways.  The digest equality check
    proves the fast path changed no output bits: both record tuples and
    the rendered ``records_table`` must match exactly.
    """
    from repro.analysis.analyze import records_table
    from repro.analysis.records import records_from_store
    from repro.store.packed import PackedResultStore
    from repro.store.result_store import make_record

    target = SMOKE_ANALYSIS_BENCH_RECORDS if smoke else ANALYSIS_BENCH_RECORDS
    base_scenarios = synthetic_sweep_grid(smoke=True)[:ANALYSIS_BENCH_BASE_SCENARIOS]
    engine = Engine()
    base_records = [
        make_record(outcome.scenario, outcome.result)
        for outcome in engine.run_batch(base_scenarios)
    ]
    with tempfile.TemporaryDirectory(prefix="repro-analysis-bench-") as work_dir:
        store = PackedResultStore(work_dir)
        batch: list[dict] = []
        for index in range(target):
            record = dict(base_records[index % len(base_records)])
            record["key"] = f"{index:016x}" + "0" * 48
            batch.append(record)
            if len(batch) >= 2000:
                store.put_records(batch)
                batch = []
        if batch:
            store.put_records(batch)
        store.close()

        reader = PackedResultStore(work_dir)
        started = time.perf_counter()
        decoded = records_from_store(reader, columns=False)
        decode_seconds = time.perf_counter() - started
        reader.close()

        reader = PackedResultStore(work_dir)
        started = time.perf_counter()
        scanned = records_from_store(reader)
        scan_seconds = time.perf_counter() - started
        reader.close()

    decoded_digest = hashlib.sha256(
        records_table(decoded).render().encode("utf-8")
    ).hexdigest()
    scanned_digest = hashlib.sha256(
        records_table(scanned).render().encode("utf-8")
    ).hexdigest()
    return {
        "records": target,
        "base_scenarios": len(base_scenarios),
        "full_decode": {
            "records": len(decoded),
            "seconds": decode_seconds,
            "rows_per_second": target / decode_seconds if decode_seconds > 0 else 0.0,
        },
        "sidecar_scan": {
            "records": len(scanned),
            "seconds": scan_seconds,
            "rows_per_second": target / scan_seconds if scan_seconds > 0 else 0.0,
        },
        "speedup": decode_seconds / scan_seconds if scan_seconds > 0 else 0.0,
        "records_identical": decoded == scanned,
        "table_digests_identical": decoded_digest == scanned_digest,
        "table_digest": scanned_digest,
    }


def _bench_campaign(smoke: bool, workers: int | None) -> dict[str, Any]:
    """Time the streaming campaign (cold vs interrupted-and-resumed sweep).

    The campaign manages its own throwaway stores -- interruption and
    resume are the thing being measured, so it never shares the session's
    ``--store`` directory.
    """
    from repro.bench.campaign import run_campaign

    with tempfile.TemporaryDirectory(prefix="repro-campaign-") as work_dir:
        return run_campaign(work_dir, smoke=smoke, workers=workers)


def run_bench(
    tag: str | None = None,
    store: ResultStore | str | Path | None = None,
    smoke: bool = False,
    workers: int | None = None,
    objective: str = DEFAULT_OBJECTIVE,
    chunk_size: "int | str" = AUTO_CHUNK,
    flush_every: int | None = None,
) -> dict[str, Any]:
    """Run the full benchmark suite and return the JSON-ready report.

    Parameters
    ----------
    tag:
        Label baked into the report (and its file name); defaults to
        :func:`default_tag`.
    store:
        Optional persistent result store shared by every timed engine.  On
        a cold (empty) store the bench seeds it; rerunning against the same
        directory times the warm path and must reproduce the same sweep
        ``digest``.
    smoke:
        Restrict to the fast subset (one experiment, a 4-point sweep) --
        the mode CI runs on every push.
    workers:
        Worker processes for the sweep's ``run_batch`` (default serial).
    objective:
        Registered objective the timed sweep optimises (default: the
        paper's throughput, which keeps the sweep digest comparable with
        earlier reports).
    chunk_size:
        Scenarios per pool task in the timed sweeps (``"auto"``: the
        planner's heuristic); also the planned leg of the ``fanout``
        section.  Chunking never changes digests.
    flush_every:
        Records per store write batch in the d695 sweep (default: every
        record immediately).
    """
    from repro import __version__

    if tag is None:
        tag = default_tag()
    if not tag or any(sep in tag for sep in "/\\"):
        raise ConfigurationError(f"bench tag must be a plain label, got {tag!r}")
    if store is not None:
        store = open_store(store)

    experiments = SMOKE_EXPERIMENTS if smoke else experiment_names()
    kernel_before = evaluate_kernel.cache_info()
    started = time.perf_counter()
    report: dict[str, Any] = {
        "format": BENCH_FORMAT,
        "tag": tag,
        "package_version": __version__,
        "python_version": platform.python_version(),
        "platform": platform.platform(),
        "created_at": time.time(),
        "smoke": smoke,
        "workers": workers,
        "store": {
            "enabled": store is not None,
            "root": str(store.root) if store is not None else None,
        },
        "experiments": _bench_experiments(experiments, store),
        "solvers": _bench_solvers(store),
        "sweep": _bench_sweep(store, smoke, workers, objective, chunk_size, flush_every),
        "synthetic_sweep": _bench_synthetic_sweep(smoke, workers, chunk_size),
        "fanout": _bench_fanout(smoke, workers, chunk_size),
        "campaign": _bench_campaign(smoke, workers),
        "analysis": _bench_analysis(smoke),
    }
    report["store_info"] = asdict(store.info()) if store is not None else None
    report["evaluate_kernel"] = _kernel_delta(kernel_before, evaluate_kernel.cache_info())
    report["wall_seconds"] = time.perf_counter() - started
    return report


def report_filename(report: dict[str, Any]) -> str:
    """File name a report is written under: ``BENCH_<tag>.json``."""
    return f"BENCH_{report['tag']}.json"


def write_report(report: dict[str, Any], output_dir: str | Path = ".") -> Path:
    """Write ``report`` as ``BENCH_<tag>.json`` under ``output_dir``.

    The directory defaults to the current working directory -- the repo
    root when run as ``python -m repro bench`` from a checkout, which is
    where the perf-trajectory files are expected.
    """
    directory = Path(output_dir).expanduser()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / report_filename(report)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def summarize_report(report: dict[str, Any]) -> str:
    """Human-readable summary of a report (printed by ``repro bench``)."""
    lines = [
        f"bench {report['tag']} (package {report['package_version']}, "
        f"python {report['python_version']}"
        + (", smoke" if report["smoke"] else "")
        + ")",
    ]
    store = report["store"]
    lines.append(
        f"  store: {store['root']}" if store["enabled"] else "  store: disabled"
    )
    lines.append("  experiments:")
    for row in report["experiments"]:
        cache = row["cache"]
        lines.append(
            f"    {row['name']:18s} {row['seconds']:8.3f}s  "
            f"(hits {cache['hits']}, store hits {cache['store_hits']}, "
            f"misses {cache['misses']})"
        )
    lines.append("  solvers (d695 @ 256ch x 64K):")
    for row in report["solvers"]:
        if "skipped" in row:
            lines.append(f"    {row['name']:18s}  skipped: {row['skipped']}")
        else:
            cache = row["cache"]
            lines.append(
                f"    {row['name']:18s} {row['seconds']:8.3f}s  "
                f"(n_opt={row['optimal_sites']}, store hits {cache['store_hits']})"
            )
    sweep = report["sweep"]
    cache = sweep["cache"]
    lines.append(
        f"  d695 sweep: {sweep['scenarios']} scenarios in {sweep['seconds']:.3f}s  "
        f"(store hits {cache['store_hits']}, misses {cache['misses']})"
    )
    lines.append(f"  sweep digest: {sweep['digest']}")
    synthetic = report.get("synthetic_sweep")
    if synthetic:
        kernel = synthetic["evaluate_kernel"]
        lines.append(
            f"  synthetic sweep (cold): {synthetic['scenarios']} scenarios in "
            f"{synthetic['seconds']:.3f}s  (kernel hits {kernel['hits']}, "
            f"misses {kernel['misses']}, max batch {kernel['max_batch']})"
        )
    fanout = report.get("fanout")
    if fanout:
        digests = "identical" if fanout["digests_identical"] else "DIFFER"
        lines.append(f"  fanout ({fanout['scenarios']} scenarios cold, digests {digests}):")
        for run in fanout["runs"]:
            lines.append(
                f"    workers={run['workers']} chunk={run['chunk_size']:>4s} "
                f"({run['chunks']} chunk(s) of <= {run['resolved_chunk_size']}): "
                f"{run['seconds']:8.3f}s  "
                f"({run['scenarios_per_second']:.1f} scenarios/s)"
            )
    kernel_total = report.get("evaluate_kernel")
    if kernel_total:
        lines.append(
            f"  evaluate kernel: {kernel_total['hits']} hits, "
            f"{kernel_total['misses']} misses over "
            f"{kernel_total['batch_calls']} batch calls "
            f"({kernel_total['batch_points']} points, "
            f"max batch {kernel_total['max_batch']})"
        )
    campaign = report["campaign"]
    digests = "identical" if campaign["digests_match"] else "DIFFER"
    lines.append(
        f"  campaign: {campaign['scenarios']} scenarios cold in "
        f"{campaign['cold_seconds']:.3f}s; interrupted after "
        f"{campaign['interrupted_after']}, resumed in "
        f"{campaign['resume_seconds']:.3f}s ({campaign['speedup']:.1f}x, "
        f"{campaign['resume_store_hits']} store hits, digests {digests})"
    )
    analysis = report.get("analysis")
    if analysis:
        digests = "identical" if analysis["table_digests_identical"] else "DIFFER"
        full = analysis["full_decode"]
        scan = analysis["sidecar_scan"]
        lines.append(
            f"  analysis ({analysis['records']} packed records, digests {digests}):"
        )
        lines.append(
            f"    full decode:  {full['seconds']:8.3f}s  "
            f"({full['rows_per_second']:,.0f} rows/s)"
        )
        lines.append(
            f"    sidecar scan: {scan['seconds']:8.3f}s  "
            f"({scan['rows_per_second']:,.0f} rows/s, "
            f"{analysis['speedup']:.1f}x)"
        )
    lines.append(f"  total wall time: {report['wall_seconds']:.3f}s")
    return "\n".join(lines)


def load_report(path: str | Path) -> dict[str, Any]:
    """Load a ``BENCH_<tag>.json`` report written by :func:`write_report`.

    Raises
    ------
    ConfigurationError
        When the file is unreadable, not JSON, or not a bench report.
    """
    try:
        report = json.loads(Path(path).expanduser().read_text(encoding="utf-8"))
    except OSError as error:
        raise ConfigurationError(f"cannot read bench report {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"{path} is not valid JSON: {error}") from error
    if not isinstance(report, dict) or "tag" not in report or "sweep" not in report:
        raise ConfigurationError(f"{path} is not a bench report (missing tag/sweep)")
    return report


def _ratio_line(label: str, previous: float, current: float) -> str:
    """One comparison line: previous -> current seconds with the speedup."""
    if current > 0:
        ratio = f"{previous / current:.2f}x"
    else:
        ratio = "inf"
    return f"    {label:18s} {previous:8.3f}s -> {current:8.3f}s  ({ratio})"


def _fanout_runs(report: dict[str, Any]) -> dict[tuple, dict[str, Any]]:
    """Index a report's fanout runs by ``(workers, chunk_size, scenarios)``.

    The matching key for cross-report comparison: a fanout run is only
    compared against a run of the *same* pool shape over the *same* grid
    size, so reruns with different ``--workers``/``--chunk``/``--smoke``
    settings never pair up as false regressions.
    """
    fanout = report.get("fanout") or {}
    return {
        (run["workers"], run["chunk_size"], run["scenarios"]): run
        for run in fanout.get("runs", ())
    }


def compare_reports(current: dict[str, Any], previous: dict[str, Any]) -> str:
    """Regression summary of ``current`` against a ``previous`` report.

    Matches the experiment and solver sections by name, compares the sweep
    and campaign workloads, and -- when both reports timed the same sweep
    (equal scenario counts and objective) -- checks digest equality, the
    signal that a speedup changed nothing.  Ratios above ``1x`` mean the
    current run is faster.  This is what ``repro bench --compare
    PREV.json`` prints, turning the committed ``BENCH_seed.json`` baseline
    into an actionable perf trajectory.
    """
    lines = [
        f"bench compare: {previous['tag']} (package "
        f"{previous.get('package_version', '?')}) -> {current['tag']} "
        f"(package {current.get('package_version', '?')})"
    ]
    previous_experiments = {
        row["name"]: row for row in previous.get("experiments", ()) if "seconds" in row
    }
    current_experiments = {
        row["name"]: row for row in current.get("experiments", ()) if "seconds" in row
    }
    shared = sorted(previous_experiments.keys() & current_experiments.keys())
    if shared:
        lines.append("  experiments:")
        for name in shared:
            lines.append(
                _ratio_line(
                    name,
                    previous_experiments[name]["seconds"],
                    current_experiments[name]["seconds"],
                )
            )
    for label, names in (
        ("new", sorted(current_experiments.keys() - previous_experiments.keys())),
        ("gone", sorted(previous_experiments.keys() - current_experiments.keys())),
    ):
        if names:
            lines.append(f"    {label}: {', '.join(names)}")

    previous_solvers = {
        row["name"]: row for row in previous.get("solvers", ()) if "seconds" in row
    }
    current_solvers = {
        row["name"]: row for row in current.get("solvers", ()) if "seconds" in row
    }
    shared = sorted(previous_solvers.keys() & current_solvers.keys())
    if shared:
        lines.append("  solvers:")
        for name in shared:
            lines.append(
                _ratio_line(
                    name, previous_solvers[name]["seconds"], current_solvers[name]["seconds"]
                )
            )

    previous_sweep, current_sweep = previous["sweep"], current["sweep"]
    lines.append("  sweep:")
    lines.append(
        _ratio_line(
            f"{current_sweep['scenarios']} scenarios",
            previous_sweep["seconds"],
            current_sweep["seconds"],
        )
    )
    comparable = previous_sweep["scenarios"] == current_sweep["scenarios"] and (
        previous_sweep.get("objective", DEFAULT_OBJECTIVE)
        == current_sweep.get("objective", DEFAULT_OBJECTIVE)
    )
    if comparable:
        digests = (
            "identical"
            if previous_sweep.get("digest") == current_sweep.get("digest")
            else "DIFFER"
        )
        lines.append(f"    digests: {digests}")
    else:
        lines.append("    digests: not comparable (different sweep workloads)")

    previous_synthetic = previous.get("synthetic_sweep")
    current_synthetic = current.get("synthetic_sweep")
    if (
        previous_synthetic
        and current_synthetic
        and previous_synthetic["scenarios"] == current_synthetic["scenarios"]
    ):
        lines.append("  synthetic sweep (cold):")
        lines.append(
            _ratio_line(
                f"{current_synthetic['scenarios']} scenarios",
                previous_synthetic["seconds"],
                current_synthetic["seconds"],
            )
        )
        digests = (
            "identical"
            if previous_synthetic.get("digest") == current_synthetic.get("digest")
            else "DIFFER"
        )
        lines.append(f"    digests: {digests}")

    previous_fanout = _fanout_runs(previous)
    current_fanout = _fanout_runs(current)
    shared_fanout = sorted(previous_fanout.keys() & current_fanout.keys())
    if shared_fanout:
        lines.append("  fanout:")
        for key in shared_fanout:
            workers_count, chunk, _ = key
            lines.append(
                _ratio_line(
                    f"w={workers_count} chunk={chunk}",
                    previous_fanout[key]["seconds"],
                    current_fanout[key]["seconds"],
                )
            )

    previous_campaign = previous.get("campaign")
    current_campaign = current.get("campaign")
    if previous_campaign and current_campaign:
        lines.append("  campaign:")
        lines.append(
            _ratio_line(
                "cold sweep", previous_campaign["cold_seconds"], current_campaign["cold_seconds"]
            )
        )
    previous_analysis = previous.get("analysis")
    current_analysis = current.get("analysis")
    if (
        previous_analysis
        and current_analysis
        and previous_analysis["records"] == current_analysis["records"]
    ):
        lines.append("  analysis:")
        lines.append(
            _ratio_line(
                "full decode",
                previous_analysis["full_decode"]["seconds"],
                current_analysis["full_decode"]["seconds"],
            )
        )
        lines.append(
            _ratio_line(
                "sidecar scan",
                previous_analysis["sidecar_scan"]["seconds"],
                current_analysis["sidecar_scan"]["seconds"],
            )
        )
        digests = (
            "identical"
            if previous_analysis.get("table_digest") == current_analysis.get("table_digest")
            else "DIFFER"
        )
        lines.append(f"    digests: {digests}")
    lines.append(
        _ratio_line(
            "total wall", previous.get("wall_seconds", 0.0), current.get("wall_seconds", 0.0)
        ).replace("    ", "  ", 1)
    )
    return "\n".join(lines)


#: Rows printed by the ``--profile`` table.
PROFILE_TOP_FUNCTIONS = 20


def _normalise_profile_path(filename: str) -> str:
    """Shorten a profiled file path to a machine-independent form.

    Repo files are shown relative to the package (``repro/...``); stdlib
    and site-packages files keep their final two components.  Built-ins
    (``~``) pass through.  Keeping paths machine-independent makes profile
    tables from different checkouts comparable line by line.
    """
    if filename.startswith("~") or filename.startswith("<"):
        return filename
    parts = Path(filename).parts
    for anchor in ("repro", "site-packages"):
        if anchor in parts:
            index = parts.index(anchor)
            if anchor == "repro":
                return "/".join(parts[index:])
            return "/".join(parts[index + 1 :])
    return "/".join(parts[-2:]) if len(parts) >= 2 else filename


def format_profile(stats: Any, limit: int = PROFILE_TOP_FUNCTIONS) -> str:
    """Top-``limit`` cumulative-time table of a :class:`pstats.Stats`.

    The table is deterministic given the profile data: rows sort by
    cumulative time descending with (path, line, function) as the tie
    break, and paths are normalised via :func:`_normalise_profile_path`.
    """
    rows = []
    for (filename, lineno, name), (_, ncalls, tottime, cumtime, _) in stats.stats.items():
        rows.append(
            (cumtime, tottime, ncalls, _normalise_profile_path(filename), lineno, name)
        )
    rows.sort(key=lambda row: (-row[0], row[3], row[4], row[5]))
    lines = [
        f"profile: top {min(limit, len(rows))} of {len(rows)} functions by cumulative time",
        f"  {'cumtime':>9s} {'tottime':>9s} {'ncalls':>9s}  function",
    ]
    for cumtime, tottime, ncalls, path, lineno, name in rows[:limit]:
        lines.append(
            f"  {cumtime:9.3f} {tottime:9.3f} {ncalls:9d}  {path}:{lineno}({name})"
        )
    return "\n".join(lines)


#: Workloads faster than this (in both reports) are never called regressions:
#: at sub-50ms scale, timer jitter swamps any real signal.
REGRESSION_FLOOR_SECONDS = 0.05


def find_regressions(
    current: dict[str, Any],
    previous: dict[str, Any],
    threshold_pct: float,
    noise_floor_seconds: float = REGRESSION_FLOOR_SECONDS,
) -> list[str]:
    """Workloads of ``current`` slower than ``previous`` by more than the threshold.

    The CI ratchet behind ``repro bench --compare BENCH_seed.json
    --fail-on-regression PCT``: every workload the two reports share by
    name -- experiments, solver backends, the d695 and synthetic sweeps,
    fanout runs of the same pool shape, the campaign's cold leg, the
    analysis section's decode and sidecar-scan legs -- is
    compared, and a line is returned for each
    one whose current time exceeds the previous time by more than
    ``threshold_pct`` percent.  Workloads below ``noise_floor_seconds``
    (default :data:`REGRESSION_FLOOR_SECONDS`; the ``--noise-floor`` CLI
    flag, in milliseconds) in both reports are ignored (pure timer noise),
    as are workloads only one report has.  An empty list means the ratchet
    passes.

    Raises
    ------
    ConfigurationError
        When ``threshold_pct`` or ``noise_floor_seconds`` is negative.
    """
    if threshold_pct < 0:
        raise ConfigurationError(
            f"regression threshold must be >= 0 percent, got {threshold_pct}"
        )
    if noise_floor_seconds < 0:
        raise ConfigurationError(
            f"noise floor must be >= 0 seconds, got {noise_floor_seconds}"
        )

    pairs: list[tuple[str, float, float]] = []
    for section in ("experiments", "solvers"):
        previous_rows = {
            row["name"]: row for row in previous.get(section, ()) if "seconds" in row
        }
        for row in current.get(section, ()):
            name = row.get("name")
            if "seconds" in row and name in previous_rows:
                pairs.append(
                    (f"{section[:-1]} {name}", previous_rows[name]["seconds"], row["seconds"])
                )
    previous_sweep, current_sweep = previous.get("sweep"), current.get("sweep")
    if (
        previous_sweep
        and current_sweep
        and previous_sweep.get("scenarios") == current_sweep.get("scenarios")
        and previous_sweep.get("objective", DEFAULT_OBJECTIVE)
        == current_sweep.get("objective", DEFAULT_OBJECTIVE)
    ):
        pairs.append(("sweep", previous_sweep["seconds"], current_sweep["seconds"]))
    previous_synthetic = previous.get("synthetic_sweep")
    current_synthetic = current.get("synthetic_sweep")
    if (
        previous_synthetic
        and current_synthetic
        and previous_synthetic.get("scenarios") == current_synthetic.get("scenarios")
    ):
        pairs.append(
            (
                "synthetic sweep",
                previous_synthetic["seconds"],
                current_synthetic["seconds"],
            )
        )
    previous_fanout = _fanout_runs(previous)
    for key, run in _fanout_runs(current).items():
        if key in previous_fanout:
            workers_count, chunk, _ = key
            pairs.append(
                (
                    f"fanout w={workers_count} chunk={chunk}",
                    previous_fanout[key]["seconds"],
                    run["seconds"],
                )
            )
    previous_campaign, current_campaign = previous.get("campaign"), current.get("campaign")
    if previous_campaign and current_campaign:
        pairs.append(
            (
                "campaign cold sweep",
                previous_campaign["cold_seconds"],
                current_campaign["cold_seconds"],
            )
        )
    previous_analysis, current_analysis = previous.get("analysis"), current.get("analysis")
    if (
        previous_analysis
        and current_analysis
        and previous_analysis.get("records") == current_analysis.get("records")
    ):
        pairs.append(
            (
                "analysis full decode",
                previous_analysis["full_decode"]["seconds"],
                current_analysis["full_decode"]["seconds"],
            )
        )
        pairs.append(
            (
                "analysis sidecar scan",
                previous_analysis["sidecar_scan"]["seconds"],
                current_analysis["sidecar_scan"]["seconds"],
            )
        )

    regressions = []
    for label, before, after in pairs:
        if max(before, after) < noise_floor_seconds:
            continue
        if after > before * (1.0 + threshold_pct / 100.0):
            slower = (after / before - 1.0) * 100.0 if before > 0 else float("inf")
            regressions.append(
                f"{label}: {before:.3f}s -> {after:.3f}s (+{slower:.1f}%, "
                f"threshold +{threshold_pct:g}%)"
            )
    return regressions
