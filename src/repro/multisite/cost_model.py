"""Multi-site cost model primitives (Section 4, Equations 4.1-4.3).

The total time a multi-site touchdown spends on a set of ``n`` devices is

``t = t_i + t_t``  with  ``t_t = t_c + t_m``               (Eq. 4.1)

where ``t_i`` is the prober index time, ``t_c`` the contact-test time and
``t_m`` the manufacturing (scan) test time.  Because all sites are tested in
parallel, the touchdown takes the same time regardless of how many of the
``n`` devices are good -- unless abort-on-fail is used, which is modelled in
:mod:`repro.multisite.abort_on_fail`.

The pass probabilities the abort-on-fail model needs are:

``P_c(n) = 1 - (1 - p_c^k)^n``   (at least one site passes contact, Eq. 4.2)
``P_m(n) = 1 - (1 - p_m)^n``     (at least one site passes the test, Eq. 4.3)

with ``p_c`` the per-terminal contact yield, ``k`` the probed terminals per
site, and ``p_m`` the manufacturing yield per SOC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import ConfigurationError


def _check_probability(value: float, name: str) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be within [0, 1], got {value}")


def site_contact_pass_probability(contact_yield: float, terminals: int) -> float:
    """Probability that a single site passes its contact test (``p_c^k``)."""
    _check_probability(contact_yield, "contact yield")
    if terminals < 0:
        raise ConfigurationError(f"terminal count must be non-negative, got {terminals}")
    return contact_yield ** terminals


def contact_pass_probability(contact_yield: float, terminals: int, sites: int) -> float:
    """Eq. 4.2: probability that at least one of ``sites`` sites passes contact."""
    if sites <= 0:
        raise ConfigurationError(f"site count must be positive, got {sites}")
    site_pass = site_contact_pass_probability(contact_yield, terminals)
    return 1.0 - (1.0 - site_pass) ** sites


def manufacturing_pass_probability(manufacturing_yield: float, sites: int) -> float:
    """Eq. 4.3: probability that at least one of ``sites`` sites passes the test."""
    _check_probability(manufacturing_yield, "manufacturing yield")
    if sites <= 0:
        raise ConfigurationError(f"site count must be positive, got {sites}")
    return 1.0 - (1.0 - manufacturing_yield) ** sites


@dataclass(frozen=True)
class TestTiming:
    """The three timing components of one multi-site touchdown (Eq. 4.1).

    Attributes
    ----------
    index_time_s:
        Prober index time ``t_i``.
    contact_test_time_s:
        Contact-test time ``t_c``.
    manufacturing_test_time_s:
        Manufacturing (scan) test time ``t_m``; for a designed architecture
        this is ``test_time_cycles / frequency``.
    """

    index_time_s: float
    contact_test_time_s: float
    manufacturing_test_time_s: float

    # Tell pytest this is a domain class, not a test-case class.
    __test__ = False

    def __post_init__(self) -> None:
        for label, value in (
            ("index time", self.index_time_s),
            ("contact-test time", self.contact_test_time_s),
            ("manufacturing test time", self.manufacturing_test_time_s),
        ):
            if value < 0:
                raise ConfigurationError(f"{label} must be non-negative, got {value}")

    @property
    def test_time_s(self) -> float:
        """Test application time ``t_t = t_c + t_m`` (Eq. 4.1)."""
        return self.contact_test_time_s + self.manufacturing_test_time_s

    @property
    def total_time_s(self) -> float:
        """Total touchdown time ``t = t_i + t_t`` (Eq. 4.1)."""
        return self.index_time_s + self.test_time_s

    def with_manufacturing_time(self, manufacturing_test_time_s: float) -> "TestTiming":
        """Return a copy with a different manufacturing test time."""
        return TestTiming(
            index_time_s=self.index_time_s,
            contact_test_time_s=self.contact_test_time_s,
            manufacturing_test_time_s=manufacturing_test_time_s,
        )
