"""Array-capable forms of the Section-4 multi-site formulas.

The scalar models in :mod:`repro.multisite.throughput`,
:mod:`repro.multisite.abort_on_fail`, :mod:`repro.multisite.retest` and
:mod:`repro.multisite.cost_model` evaluate one configuration at a time and
validate their inputs on every call.  The batch evaluation kernel
(:mod:`repro.solvers.evaluate`) instead evaluates a whole Step-2 site-count
range at once, so this module provides numpy twins of the same equations
operating on arrays of candidate site counts, with validation hoisted out
of the per-point hot loop into the :class:`ScenarioBatch` constructor.

**Bit-identity contract.**  The array forms must produce *exactly* the
bytes the scalar forms produce, point for point -- ``repro all`` digests
and store records depend on it.  Every expression below therefore performs
the same IEEE-754 double operations in the same order as its scalar twin
(numpy elementwise ``+ - * /``, ``minimum``/``maximum`` and ``power`` on
float64 match CPython's float arithmetic operation for operation).  The
kernel equivalence test suite pins this across SOCs, objectives and yield
settings.

This module is the only part of :mod:`repro.multisite` that imports numpy;
everything else works without it, and the kernel falls back to the scalar
forms when this import fails.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.multisite.throughput import SECONDS_PER_HOUR


def throughput_per_hour_array(
    sites: np.ndarray, index_time_s: float, test_time_s: np.ndarray
) -> np.ndarray:
    """Eq. 4.5 over arrays: devices tested per hour for ``sites``-site testing."""
    return SECONDS_PER_HOUR * sites / (index_time_s + test_time_s)


def site_contact_pass_probability_array(
    contact_yield: float, terminals: np.ndarray
) -> np.ndarray:
    """Array form of ``p_c^k`` for per-point terminal counts ``k``."""
    return np.power(contact_yield, terminals)


def contact_pass_probability_array(
    contact_yield: float, terminals: np.ndarray, sites: np.ndarray
) -> np.ndarray:
    """Eq. 4.2 over arrays: at least one of ``sites`` sites passes contact."""
    site_pass = site_contact_pass_probability_array(contact_yield, terminals)
    return 1.0 - np.power(1.0 - site_pass, sites)


def manufacturing_pass_probability_array(
    manufacturing_yield: float, sites: np.ndarray
) -> np.ndarray:
    """Eq. 4.3 over arrays: at least one of ``sites`` sites passes the test."""
    return 1.0 - np.power(1.0 - manufacturing_yield, sites)


def abort_on_fail_test_time_array(
    contact_test_time_s: float,
    manufacturing_test_time_s: np.ndarray,
    contact_yield: float,
    manufacturing_yield: float,
    terminals_per_site: np.ndarray,
    sites: np.ndarray,
) -> np.ndarray:
    """Eq. 4.4 over arrays: expected test time with abort-on-fail."""
    p_contact = contact_pass_probability_array(contact_yield, terminals_per_site, sites)
    p_manufacturing = manufacturing_pass_probability_array(manufacturing_yield, sites)
    return p_contact * (
        contact_test_time_s + p_manufacturing * manufacturing_test_time_s
    )


def contact_fail_rate_array(
    contact_yield: float, terminals: np.ndarray, approximate: bool = True
) -> np.ndarray:
    """Per-device contact-fail probability over arrays of terminal counts."""
    if approximate:
        return np.minimum(1.0, terminals * (1.0 - contact_yield))
    return 1.0 - site_contact_pass_probability_array(contact_yield, terminals)


def unique_throughput_array(
    throughput_per_hour: np.ndarray,
    contact_yield: float,
    terminals: np.ndarray,
    approximate: bool = True,
) -> np.ndarray:
    """Eq. 4.6 over arrays: unique devices tested per hour."""
    if approximate:
        rate = contact_fail_rate_array(contact_yield, terminals, approximate=True)
        return np.maximum(0.0, throughput_per_hour * (1.0 - rate))
    rate = contact_fail_rate_array(contact_yield, terminals, approximate=False)
    return throughput_per_hour / (1.0 + rate)


@dataclass(frozen=True, eq=False)
class ScenarioBatch:
    """A vector of multi-site configurations sharing one test cell.

    The array twin of :class:`~repro.multisite.throughput.MultiSiteScenario`:
    ``sites``, ``channels_per_site`` and the manufacturing test times vary
    per point, while the probe-station timing and the yields are shared.
    All domain validation runs once here instead of once per point.

    Attributes
    ----------
    sites:
        Site counts ``n``, one per configuration (int array).
    channels_per_site:
        ATE signal channels probed per site (``k``), one per configuration.
    manufacturing_test_time_s:
        Manufacturing (scan) test time ``t_m`` in seconds, one per
        configuration.
    index_time_s, contact_test_time_s:
        Shared probe-station timing ``t_i`` and ``t_c``.
    contact_yield, manufacturing_yield:
        Shared per-terminal contact yield ``p_c`` and per-device
        manufacturing yield ``p_m``.
    """

    sites: np.ndarray
    channels_per_site: np.ndarray
    manufacturing_test_time_s: np.ndarray
    index_time_s: float
    contact_test_time_s: float
    contact_yield: float = 1.0
    manufacturing_yield: float = 1.0

    def __post_init__(self) -> None:
        lengths = {
            len(self.sites),
            len(self.channels_per_site),
            len(self.manufacturing_test_time_s),
        }
        if len(lengths) != 1:
            raise ConfigurationError(
                f"batch axes must have equal lengths, got {sorted(lengths)}"
            )
        if len(self.sites) == 0:
            raise ConfigurationError("batch must contain at least one configuration")
        if np.any(self.sites <= 0):
            raise ConfigurationError("site counts must be positive")
        if np.any(self.channels_per_site <= 0):
            raise ConfigurationError("channels per site must be positive")
        if (
            self.index_time_s < 0
            or self.contact_test_time_s < 0
            or np.any(self.manufacturing_test_time_s < 0)
        ):
            raise ConfigurationError("times must be non-negative")
        for label, value in (
            ("contact yield", self.contact_yield),
            ("manufacturing yield", self.manufacturing_yield),
        ):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{label} must be within [0, 1], got {value}")

    def __len__(self) -> int:
        return len(self.sites)

    def test_time_s(self, abort_on_fail: bool = False) -> np.ndarray:
        """Test application time ``t_t``, optionally with abort-on-fail."""
        if not abort_on_fail:
            return self.contact_test_time_s + self.manufacturing_test_time_s
        return abort_on_fail_test_time_array(
            self.contact_test_time_s,
            self.manufacturing_test_time_s,
            self.contact_yield,
            self.manufacturing_yield,
            self.channels_per_site,
            self.sites,
        )

    def throughput(self, abort_on_fail: bool = False) -> np.ndarray:
        """Devices tested per hour ``D_th`` (Eq. 4.5) per configuration."""
        return throughput_per_hour_array(
            self.sites, self.index_time_s, self.test_time_s(abort_on_fail)
        )

    def unique_throughput(
        self, abort_on_fail: bool = False, approximate: bool = True
    ) -> np.ndarray:
        """Unique devices tested per hour ``D^u_th`` (Eq. 4.6) per configuration."""
        return unique_throughput_array(
            self.throughput(abort_on_fail),
            self.contact_yield,
            self.channels_per_site,
            approximate=approximate,
        )
