"""Test throughput model (Section 4, Equation 4.5) and scenario bundling.

Assuming full utilisation of the ATE, the number of devices tested per hour
with ``n``-site testing is

``D_th = 3600 * n / (t_i + t_t)``                              (Eq. 4.5)

where ``t_t`` is either the plain test application time ``t_c + t_m`` or the
abort-on-fail expectation of Eq. 4.4.  :class:`MultiSiteScenario` bundles all
parameters of one multi-site configuration so experiments and the optimiser
can evaluate throughput, unique throughput and abort-on-fail variants with
one call.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import ConfigurationError
from repro.multisite.abort_on_fail import abort_on_fail_test_time
from repro.multisite.cost_model import TestTiming
from repro.multisite.retest import unique_throughput

SECONDS_PER_HOUR = 3600.0


def throughput_per_hour(sites: int, index_time_s: float, test_time_s: float) -> float:
    """Eq. 4.5: devices tested per hour for ``sites``-site testing.

    >>> round(throughput_per_hour(4, 0.5, 1.5), 1)
    7200.0
    """
    if sites <= 0:
        raise ConfigurationError(f"site count must be positive, got {sites}")
    if index_time_s < 0 or test_time_s < 0:
        raise ConfigurationError("times must be non-negative")
    total = index_time_s + test_time_s
    if total <= 0:
        raise ConfigurationError("total touchdown time must be positive")
    return SECONDS_PER_HOUR * sites / total


@dataclass(frozen=True)
class MultiSiteScenario:
    """One fully specified multi-site configuration.

    Attributes
    ----------
    sites:
        Number of sites ``n`` tested in parallel.
    timing:
        Touchdown timing (index, contact test, manufacturing test).
    channels_per_site:
        ATE signal channels probed per site (``k``); drives the contact-fail
        and re-test models.
    contact_yield:
        Per-terminal contact yield ``p_c``.
    manufacturing_yield:
        Per-device manufacturing yield ``p_m``.
    """

    sites: int
    timing: TestTiming
    channels_per_site: int
    contact_yield: float = 1.0
    manufacturing_yield: float = 1.0

    def __post_init__(self) -> None:
        if self.sites <= 0:
            raise ConfigurationError(f"site count must be positive, got {self.sites}")
        if self.channels_per_site <= 0:
            raise ConfigurationError(
                f"channels per site must be positive, got {self.channels_per_site}"
            )
        for label, value in (
            ("contact yield", self.contact_yield),
            ("manufacturing yield", self.manufacturing_yield),
        ):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{label} must be within [0, 1], got {value}")

    # ------------------------------------------------------------------
    # Test application time
    # ------------------------------------------------------------------
    def test_time_s(self, abort_on_fail: bool = False) -> float:
        """Test application time ``t_t``, optionally with abort-on-fail (Eq. 4.4)."""
        if not abort_on_fail:
            return self.timing.test_time_s
        return abort_on_fail_test_time(
            self.timing,
            self.contact_yield,
            self.manufacturing_yield,
            self.channels_per_site,
            self.sites,
        )

    def total_time_s(self, abort_on_fail: bool = False) -> float:
        """Total touchdown time ``t_i + t_t``."""
        return self.timing.index_time_s + self.test_time_s(abort_on_fail)

    # ------------------------------------------------------------------
    # Throughput
    # ------------------------------------------------------------------
    def throughput(self, abort_on_fail: bool = False) -> float:
        """Devices tested per hour ``D_th`` (Eq. 4.5)."""
        return throughput_per_hour(
            self.sites, self.timing.index_time_s, self.test_time_s(abort_on_fail)
        )

    def unique_throughput(
        self, abort_on_fail: bool = False, approximate: bool = True
    ) -> float:
        """Unique devices tested per hour ``D^u_th`` (Eq. 4.6)."""
        return unique_throughput(
            self.throughput(abort_on_fail),
            self.contact_yield,
            self.channels_per_site,
            approximate=approximate,
        )

    def describe(self) -> str:
        """One-line summary used by reports."""
        return (
            f"{self.sites} sites x {self.channels_per_site} channels: "
            f"t_i={self.timing.index_time_s:.3f}s, t_t={self.timing.test_time_s:.3f}s, "
            f"D_th={self.throughput():.0f}/h"
        )
