"""Abort-on-fail test-time model (Section 4, Equation 4.4).

In high-volume production, failing devices are discarded rather than
analysed, so the test can be aborted as soon as the first failing vector is
observed.  With a single site this shortens the average test time
considerably at low yield.  With ``n`` sites tested in parallel, the test
can only be aborted once *all* sites have started failing, which quickly
becomes unlikely as ``n`` grows -- one of the paper's conclusions is that
abort-on-fail loses its benefit beyond roughly four sites.

The paper derives a deliberately optimistic lower bound by assuming that a
failing device consumes *zero* test time:

``t_t = P_c(n) * ( t_c + P_m(n) * t_m )``                    (Eq. 4.4)

i.e. the contact test is only paid when at least one site makes contact, and
the manufacturing test is only paid when additionally at least one site is a
good device.  Because even this optimistic bound converges to ``t_c + t_m``
for modest ``n``, the conclusion that abort-on-fail does not help multi-site
testing is conservative.
"""

from __future__ import annotations

from repro.core.exceptions import ConfigurationError
from repro.multisite.cost_model import (
    TestTiming,
    contact_pass_probability,
    manufacturing_pass_probability,
)


def abort_on_fail_test_time(
    timing: TestTiming,
    contact_yield: float,
    manufacturing_yield: float,
    terminals_per_site: int,
    sites: int,
) -> float:
    """Expected (lower-bound) test application time with abort-on-fail, Eq. 4.4.

    Parameters
    ----------
    timing:
        Touchdown timing; only ``t_c`` and ``t_m`` are used.
    contact_yield:
        Per-terminal contact yield ``p_c``.
    manufacturing_yield:
        Per-device manufacturing yield ``p_m``.
    terminals_per_site:
        Probed terminals per site (``k`` signal channels).
    sites:
        Number of sites ``n`` tested in parallel.

    Returns
    -------
    float
        The expected test application time ``t_t`` in seconds (excludes the
        index time).
    """
    if sites <= 0:
        raise ConfigurationError(f"site count must be positive, got {sites}")
    p_contact = contact_pass_probability(contact_yield, terminals_per_site, sites)
    p_manufacturing = manufacturing_pass_probability(manufacturing_yield, sites)
    return p_contact * (
        timing.contact_test_time_s + p_manufacturing * timing.manufacturing_test_time_s
    )


def abort_on_fail_saving(
    timing: TestTiming,
    contact_yield: float,
    manufacturing_yield: float,
    terminals_per_site: int,
    sites: int,
) -> float:
    """Fractional test-time saving of abort-on-fail relative to the full test.

    A value of 0.3 means the (optimistic) abort-on-fail test time is 30%
    shorter than ``t_c + t_m``; a value near 0 means abort-on-fail is
    ineffective, which is what happens for large site counts.
    """
    full = timing.test_time_s
    if full == 0:
        return 0.0
    reduced = abort_on_fail_test_time(
        timing, contact_yield, manufacturing_yield, terminals_per_site, sites
    )
    return 1.0 - reduced / full
