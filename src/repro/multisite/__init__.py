"""Multi-site test cost model: Equations 4.1-4.6 of the paper."""

from repro.multisite.cost_model import (
    TestTiming,
    site_contact_pass_probability,
    contact_pass_probability,
    manufacturing_pass_probability,
)
from repro.multisite.abort_on_fail import abort_on_fail_test_time, abort_on_fail_saving
from repro.multisite.retest import contact_fail_rate, retests_per_hour, unique_throughput
from repro.multisite.throughput import (
    SECONDS_PER_HOUR,
    MultiSiteScenario,
    throughput_per_hour,
)

__all__ = [
    "TestTiming",
    "site_contact_pass_probability",
    "contact_pass_probability",
    "manufacturing_pass_probability",
    "abort_on_fail_test_time",
    "abort_on_fail_saving",
    "contact_fail_rate",
    "retests_per_hour",
    "unique_throughput",
    "SECONDS_PER_HOUR",
    "MultiSiteScenario",
    "throughput_per_hour",
]
