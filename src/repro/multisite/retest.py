"""Re-test model for contact failures (Section 4, Equation 4.6).

Devices that fail only their contact test are usually re-tested: chances are
the failure was a bad probe contact rather than a bad die, and discarding
good product would be wasteful.  Re-testing does not change the number of
devices the test cell processes per hour (``D_th``), but every re-test slot
is occupied by a device that was already seen, so the number of *unique*
devices tested per hour (``D^u_th``) drops.

The paper makes two simplifying assumptions, which we follow (and complement
with an exact variant):

* at most one terminal fails contact per device, so the per-device contact
  fail rate is approximately ``k * (1 - p_c)`` for ``k`` probed terminals;
* a device is re-tested at most once.

With re-test rate ``r`` the unique throughput becomes

``D^u_th = D_th * (1 - r)``                                   (Eq. 4.6)

The exact per-device contact-fail probability is ``1 - p_c^k``; the exact
unique throughput treating every contact-failed device as consuming one
extra slot is ``D_th / (1 + (1 - p_c^k))``.  Both variants are exposed so the
reproduction can show how far the paper's approximation stretches at low
contact yields.
"""

from __future__ import annotations

from repro.core.exceptions import ConfigurationError
from repro.multisite.cost_model import site_contact_pass_probability


def contact_fail_rate(contact_yield: float, terminals: int, approximate: bool = True) -> float:
    """Per-device probability of failing the contact test.

    With ``approximate=True`` this is the paper's linearised rate
    ``k * (1 - p_c)`` capped at 1; otherwise the exact ``1 - p_c^k``.
    """
    if terminals < 0:
        raise ConfigurationError(f"terminal count must be non-negative, got {terminals}")
    if not 0.0 <= contact_yield <= 1.0:
        raise ConfigurationError(f"contact yield must be within [0, 1], got {contact_yield}")
    if approximate:
        return min(1.0, terminals * (1.0 - contact_yield))
    return 1.0 - site_contact_pass_probability(contact_yield, terminals)


def retests_per_hour(
    throughput_per_hour: float,
    contact_yield: float,
    terminals: int,
    approximate: bool = True,
) -> float:
    """Number of test slots per hour spent on re-testing contact failures."""
    if throughput_per_hour < 0:
        raise ConfigurationError("throughput must be non-negative")
    return throughput_per_hour * contact_fail_rate(contact_yield, terminals, approximate)


def unique_throughput(
    throughput_per_hour: float,
    contact_yield: float,
    terminals: int,
    approximate: bool = True,
) -> float:
    """Unique devices tested per hour, Eq. 4.6.

    Parameters
    ----------
    throughput_per_hour:
        Raw device slots per hour ``D_th`` (Eq. 4.5).
    contact_yield:
        Per-terminal contact yield ``p_c``.
    terminals:
        Probed terminals per device (``k`` signal channels).
    approximate:
        ``True`` (default) reproduces the paper's linearised model
        ``D^u_th = D_th * (1 - k*(1-p_c))``, clamped at zero.  ``False``
        uses the exact slot-accounting model ``D_th / (1 + (1 - p_c^k))``.
    """
    if throughput_per_hour < 0:
        raise ConfigurationError("throughput must be non-negative")
    if approximate:
        rate = contact_fail_rate(contact_yield, terminals, approximate=True)
        return max(0.0, throughput_per_hour * (1.0 - rate))
    rate = contact_fail_rate(contact_yield, terminals, approximate=False)
    return throughput_per_hour / (1.0 + rate)
