"""Synthetic SOC generator.

Two of the paper's experimental subjects cannot be shipped with this
reproduction: the Philips PNX8550 test data are proprietary, and the larger
ITC'02 benchmark files are not available in this offline environment.  The
generator in this module builds *synthetic but realistic* SOCs:

* module sizes (scan flip-flops, pattern counts, terminal counts) follow
  log-normal distributions, reproducing the strong skew of real designs
  (a few very large cores, many small ones);
* memories are modelled as BIST-ed blocks with a narrow functional
  interface and no internal scan chains exposed to the TAM;
* the whole SOC is **calibrated** to a target minimum test-data "area"
  (the sum over modules of ``patterns * max(scan_in_bits, scan_out_bits)``,
  i.e. the number of channel*cycle units the test occupies on the ATE in the
  best case).  Calibration scales the pattern counts so experiments land in
  the same operating regime as the paper's, which is what the qualitative
  conclusions depend on.

All generation is seeded through :class:`repro.core.rng.DeterministicRng`,
so a given (seed, parameters) pair always produces the identical SOC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import ConfigurationError
from repro.core.rng import DeterministicRng
from repro.soc.builder import SocBuilder
from repro.soc.module import Module, make_module
from repro.soc.soc import Soc


@dataclass(frozen=True)
class LogicModuleProfile:
    """Distribution parameters for synthetic logic modules.

    ``median_flipflops`` / ``sigma_flipflops`` parameterise the log-normal
    draw for the scan flip-flop count; analogous fields exist for pattern
    and terminal counts.  Scan-chain counts are chosen so individual chains
    stay within ``target_chain_length`` flip-flops.
    """

    median_flipflops: int = 4000
    sigma_flipflops: float = 1.1
    min_flipflops: int = 50
    max_flipflops: int = 60_000
    median_patterns: int = 400
    sigma_patterns: float = 0.9
    min_patterns: int = 20
    max_patterns: int = 6000
    median_terminals: int = 80
    sigma_terminals: float = 0.7
    min_terminals: int = 8
    max_terminals: int = 600
    target_chain_length: int = 500


@dataclass(frozen=True)
class MemoryModuleProfile:
    """Distribution parameters for synthetic (BIST-ed) memory modules.

    Memories expose only a narrow functional interface to the wrapper; the
    heavy lifting happens in on-chip BIST, so the external pattern count is
    modest.
    """

    median_patterns: int = 300
    sigma_patterns: float = 0.8
    min_patterns: int = 20
    max_patterns: int = 4000
    min_terminals: int = 8
    max_terminals: int = 48


def _split_terminals(rng: DeterministicRng, total: int) -> tuple[int, int, int]:
    """Split a terminal budget into (inputs, outputs, bidirs)."""
    if total < 2:
        return max(total, 1), 1, 0
    inputs = max(1, int(round(total * rng.uniform(0.35, 0.6))))
    bidirs = int(round(total * rng.uniform(0.0, 0.15)))
    outputs = max(1, total - inputs - bidirs)
    return inputs, outputs, bidirs


def _make_logic_module(
    name: str, rng: DeterministicRng, profile: LogicModuleProfile
) -> Module:
    flipflops = rng.lognormal_int(
        profile.median_flipflops,
        profile.sigma_flipflops,
        profile.min_flipflops,
        profile.max_flipflops,
    )
    patterns = rng.lognormal_int(
        profile.median_patterns,
        profile.sigma_patterns,
        profile.min_patterns,
        profile.max_patterns,
    )
    terminals = rng.lognormal_int(
        profile.median_terminals,
        profile.sigma_terminals,
        profile.min_terminals,
        profile.max_terminals,
    )
    inputs, outputs, bidirs = _split_terminals(rng, terminals)

    num_chains = max(1, min(64, round(flipflops / profile.target_chain_length)))
    base, extra = divmod(flipflops, num_chains)
    scan_lengths = [base + (1 if index < extra else 0) for index in range(num_chains)]
    scan_lengths = [length for length in scan_lengths if length > 0]

    return make_module(
        name=name,
        inputs=inputs,
        outputs=outputs,
        bidirs=bidirs,
        scan_lengths=scan_lengths,
        patterns=patterns,
        is_memory=False,
    )


def _make_memory_module(
    name: str, rng: DeterministicRng, profile: MemoryModuleProfile
) -> Module:
    patterns = rng.lognormal_int(
        profile.median_patterns,
        profile.sigma_patterns,
        profile.min_patterns,
        profile.max_patterns,
    )
    terminals = rng.randint(profile.min_terminals, profile.max_terminals)
    inputs, outputs, bidirs = _split_terminals(rng, terminals)
    return make_module(
        name=name,
        inputs=inputs,
        outputs=outputs,
        bidirs=bidirs,
        scan_lengths=[],
        patterns=patterns,
        is_memory=True,
    )


def _module_min_area(module: Module) -> int:
    """Best-case ATE occupation of a module in channel*cycle units."""
    return module.patterns * max(module.scan_in_bits, module.scan_out_bits)


def _rescale_patterns(module: Module, factor: float) -> Module:
    """Return a copy of ``module`` with its pattern count scaled by ``factor``."""
    patterns = max(1, int(round(module.patterns * factor)))
    return Module(
        name=module.name,
        inputs=module.inputs,
        outputs=module.outputs,
        bidirs=module.bidirs,
        scan_chains=module.scan_chains,
        patterns=patterns,
        is_memory=module.is_memory,
    )


def make_synthetic_soc(
    name: str,
    num_logic: int,
    num_memory: int,
    seed: int,
    target_min_area: int | None = None,
    logic_profile: LogicModuleProfile | None = None,
    memory_profile: MemoryModuleProfile | None = None,
    functional_pins: int | None = None,
) -> Soc:
    """Generate a synthetic SOC.

    Parameters
    ----------
    name:
        Name of the generated SOC.
    num_logic, num_memory:
        Number of logic and memory modules to generate.
    seed:
        Seed for the deterministic random source.
    target_min_area:
        When given, pattern counts are scaled (module-proportionally) so the
        total best-case ATE occupation (channel*cycle units) is approximately
        this value.  This is the knob used to calibrate the synthetic
        PNX8550 and the synthetic ITC'02 reconstructions against published
        operating points.
    functional_pins:
        Chip-level functional pin count to record on the SOC.

    Returns
    -------
    Soc
        The generated SOC.  Generation is fully deterministic in ``seed``.
    """
    if num_logic < 0 or num_memory < 0:
        raise ConfigurationError("module counts must be non-negative")
    if num_logic + num_memory == 0:
        raise ConfigurationError("SOC must contain at least one module")
    if target_min_area is not None and target_min_area <= 0:
        raise ConfigurationError("target_min_area must be positive")

    logic_profile = logic_profile or LogicModuleProfile()
    memory_profile = memory_profile or MemoryModuleProfile()
    rng = DeterministicRng(seed)

    modules: list[Module] = []
    for index in range(num_logic):
        modules.append(
            _make_logic_module(f"logic{index:03d}", rng.spawn(index), logic_profile)
        )
    for index in range(num_memory):
        modules.append(
            _make_memory_module(
                f"mem{index:03d}", rng.spawn(10_000 + index), memory_profile
            )
        )

    if target_min_area is not None:
        raw_area = sum(_module_min_area(module) for module in modules)
        if raw_area > 0:
            factor = target_min_area / raw_area
            modules = [_rescale_patterns(module, factor) for module in modules]

    builder = SocBuilder(name, functional_pins=functional_pins)
    for module in modules:
        builder.add(module)
    return builder.build()


def total_min_area(soc: Soc) -> int:
    """Return the best-case ATE occupation of ``soc`` in channel*cycle units.

    This is the quantity the synthetic generator calibrates against and the
    quantity the theoretical channel lower bound divides by the memory depth.
    """
    return sum(_module_min_area(module) for module in soc.modules)
