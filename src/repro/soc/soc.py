"""Data model for a System-on-Chip (SOC) under test.

An :class:`Soc` is an ordered collection of :class:`~repro.soc.module.Module`
objects plus a handful of chip-level attributes (name, functional pin count).
The paper distinguishes two cases:

* **modular (core-based) SOCs** -- every embedded core is wrapped and tested
  through TAMs (Problem 1);
* **flattened SOCs** -- the whole chip is one module, the module wrapper and
  the chip-level E-RPCT wrapper coincide (Problem 2, a degenerate case of
  Problem 1 with ``|M| = 1``).

Both are represented by the same class; a flattened SOC simply has a single
module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.core.exceptions import InvalidSocError
from repro.core.fingerprint import pickle_state
from repro.soc.module import Module


@dataclass(frozen=True)
class Soc:
    """A System-on-Chip consisting of one or more testable modules.

    Attributes
    ----------
    name:
        Chip name (e.g. ``"d695"`` or ``"pnx8550"``).
    modules:
        The testable modules, in a stable order.  Module names must be
        unique.
    functional_pins:
        Total number of functional chip pins.  Only used by the E-RPCT
        accounting (how many pins the wrapper removes from the ATE
        interface); when unknown it defaults to the sum of module terminal
        counts, which is a conservative stand-in.
    """

    name: str
    modules: tuple[Module, ...]
    functional_pins: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidSocError("SOC name must be non-empty")
        if not isinstance(self.modules, tuple):
            object.__setattr__(self, "modules", tuple(self.modules))
        if not self.modules:
            raise InvalidSocError(f"SOC {self.name!r} must contain at least one module")
        seen: set[str] = set()
        for module in self.modules:
            if module.name in seen:
                raise InvalidSocError(
                    f"SOC {self.name!r}: duplicate module name {module.name!r}"
                )
            seen.add(module.name)
        if self.functional_pins is not None and self.functional_pins < 0:
            raise InvalidSocError(
                f"SOC {self.name!r}: functional_pins must be >= 0, got {self.functional_pins}"
            )

    def __hash__(self) -> int:
        # Structural hash cached on first use; see repro.core.fingerprint.
        fingerprint = self.__dict__.get("_fingerprint")
        if fingerprint is None:
            fingerprint = hash((self.name, self.modules, self.functional_pins))
            object.__setattr__(self, "_fingerprint", fingerprint)
        return fingerprint

    __getstate__ = pickle_state

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Module]:
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)

    def __contains__(self, name: object) -> bool:
        if isinstance(name, Module):
            return name in self.modules
        return any(module.name == name for module in self.modules)

    def module(self, name: str) -> Module:
        """Return the module called ``name``.

        Raises
        ------
        KeyError
            If no module with that name exists.
        """
        for module in self.modules:
            if module.name == name:
                return module
        raise KeyError(f"SOC {self.name!r} has no module named {name!r}")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def is_flat(self) -> bool:
        """True when the SOC is tested as a single flattened module."""
        return len(self.modules) == 1

    @property
    def module_names(self) -> tuple[str, ...]:
        """Module names in declaration order."""
        return tuple(module.name for module in self.modules)

    @property
    def logic_modules(self) -> tuple[Module, ...]:
        """Modules not flagged as memories."""
        return tuple(module for module in self.modules if not module.is_memory)

    @property
    def memory_modules(self) -> tuple[Module, ...]:
        """Modules flagged as memories."""
        return tuple(module for module in self.modules if module.is_memory)

    @property
    def total_scan_flipflops(self) -> int:
        """Total scan flip-flop count over all modules."""
        return sum(module.total_scan_flipflops for module in self.modules)

    @property
    def total_patterns(self) -> int:
        """Sum of all module pattern counts."""
        return sum(module.patterns for module in self.modules)

    @property
    def test_data_volume_bits(self) -> int:
        """Total stimulus + response test-data volume in bits."""
        return sum(module.test_data_volume_bits for module in self.modules)

    @property
    def estimated_functional_pins(self) -> int:
        """Functional pin count, falling back to the module terminal total."""
        if self.functional_pins is not None:
            return self.functional_pins
        return sum(
            module.inputs + module.outputs + module.bidirs for module in self.modules
        )

    def describe(self) -> str:
        """Multi-line human-readable summary used by reports and the CLI."""
        lines = [
            f"SOC {self.name}: {len(self.modules)} modules "
            f"({len(self.logic_modules)} logic, {len(self.memory_modules)} memory)",
            f"  scan flip-flops : {self.total_scan_flipflops}",
            f"  test patterns   : {self.total_patterns}",
            f"  test data volume: {self.test_data_volume_bits} bits",
        ]
        return "\n".join(lines)


def flatten(soc: Soc, name: str | None = None) -> Soc:
    """Return a flattened single-module view of ``soc``.

    The flattened module aggregates all scan chains, terminals and patterns
    of the original modules.  This models a chip tested with a single
    top-level test (Problem 2): the pattern count becomes the maximum module
    pattern count only if tests could be applied concurrently, but a
    flattened top-level test applies one merged pattern set, so we use the
    sum of pattern counts as a conservative model.
    """
    merged_chains = tuple(
        chain for module in soc.modules for chain in module.scan_chains
    )
    merged = Module(
        name=name or f"{soc.name}_flat",
        inputs=sum(module.inputs for module in soc.modules),
        outputs=sum(module.outputs for module in soc.modules),
        bidirs=sum(module.bidirs for module in soc.modules),
        scan_chains=merged_chains,
        patterns=sum(module.patterns for module in soc.modules),
    )
    return Soc(name=name or f"{soc.name}_flat", modules=(merged,),
               functional_pins=soc.functional_pins)
