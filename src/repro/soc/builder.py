"""Fluent builder for constructing :class:`~repro.soc.soc.Soc` objects.

The dataclasses in :mod:`repro.soc.module` and :mod:`repro.soc.soc` are
immutable; the builder offers a convenient mutable staging area for
programmatic construction (used by the synthetic generators, the ITC'02
parser and the examples).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.exceptions import InvalidSocError
from repro.soc.module import Module, make_module
from repro.soc.soc import Soc


class SocBuilder:
    """Incrementally build an :class:`Soc`.

    Example
    -------
    >>> soc = (
    ...     SocBuilder("tiny")
    ...     .add_module("core_a", inputs=8, outputs=8, bidirs=0,
    ...                 scan_lengths=[100, 100], patterns=50)
    ...     .add_module("core_b", inputs=16, outputs=4, bidirs=2,
    ...                 scan_lengths=[200], patterns=120)
    ...     .build()
    ... )
    >>> len(soc)
    2
    """

    def __init__(self, name: str, functional_pins: int | None = None):
        if not name:
            raise InvalidSocError("SOC name must be non-empty")
        self._name = name
        self._functional_pins = functional_pins
        self._modules: list[Module] = []
        self._names: set[str] = set()

    @property
    def name(self) -> str:
        """Name the SOC will be built with."""
        return self._name

    @property
    def num_modules(self) -> int:
        """Number of modules added so far."""
        return len(self._modules)

    def with_functional_pins(self, pins: int) -> "SocBuilder":
        """Set the chip-level functional pin count."""
        if pins < 0:
            raise InvalidSocError(f"functional pin count must be >= 0, got {pins}")
        self._functional_pins = pins
        return self

    def add_module(
        self,
        name: str,
        inputs: int,
        outputs: int,
        bidirs: int,
        scan_lengths: Sequence[int] | Iterable[int],
        patterns: int,
        is_memory: bool = False,
    ) -> "SocBuilder":
        """Add a module described by its terminal counts and scan-chain lengths."""
        if name in self._names:
            raise InvalidSocError(f"duplicate module name {name!r} in SOC {self._name!r}")
        module = make_module(
            name=name,
            inputs=inputs,
            outputs=outputs,
            bidirs=bidirs,
            scan_lengths=scan_lengths,
            patterns=patterns,
            is_memory=is_memory,
        )
        self._modules.append(module)
        self._names.add(name)
        return self

    def add(self, module: Module) -> "SocBuilder":
        """Add an already-constructed :class:`Module`."""
        if module.name in self._names:
            raise InvalidSocError(
                f"duplicate module name {module.name!r} in SOC {self._name!r}"
            )
        self._modules.append(module)
        self._names.add(module.name)
        return self

    def build(self) -> Soc:
        """Construct the immutable :class:`Soc`.

        Raises
        ------
        InvalidSocError
            If no modules were added.
        """
        if not self._modules:
            raise InvalidSocError(f"SOC {self._name!r} must contain at least one module")
        return Soc(
            name=self._name,
            modules=tuple(self._modules),
            functional_pins=self._functional_pins,
        )
