"""SOC data model: modules, scan chains, SOCs, builders and generators."""

from repro.soc.module import Module, ScanChain, make_module
from repro.soc.soc import Soc, flatten
from repro.soc.builder import SocBuilder
from repro.soc.validation import (
    Severity,
    ValidationIssue,
    validate_soc,
    has_errors,
    format_issues,
)
from repro.soc.synthetic import (
    LogicModuleProfile,
    MemoryModuleProfile,
    make_synthetic_soc,
    total_min_area,
)
from repro.soc.pnx8550 import make_pnx8550
from repro.soc.catalog import (
    CatalogEntry,
    catalog_names,
    list_catalog,
    register_catalog_soc,
    resolve_catalog_soc,
    synthetic_family,
    synthetic_soc_name,
)

__all__ = [
    "Module",
    "ScanChain",
    "make_module",
    "Soc",
    "flatten",
    "SocBuilder",
    "Severity",
    "ValidationIssue",
    "validate_soc",
    "has_errors",
    "format_issues",
    "LogicModuleProfile",
    "MemoryModuleProfile",
    "make_synthetic_soc",
    "total_min_area",
    "make_pnx8550",
    "CatalogEntry",
    "catalog_names",
    "list_catalog",
    "register_catalog_soc",
    "resolve_catalog_soc",
    "synthetic_family",
    "synthetic_soc_name",
]
