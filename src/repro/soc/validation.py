"""Structural validation and sanity reporting for SOC descriptions.

The :class:`~repro.soc.soc.Soc` and :class:`~repro.soc.module.Module`
dataclasses enforce hard invariants at construction time (non-negative
counts, unique names, ...).  This module adds *soft* validation: checks that
do not make a description invalid but usually indicate a modelling mistake,
such as a module with thousands of functional terminals and no scan, or a
pattern count of one.

The result of validation is a list of :class:`ValidationIssue` objects, each
carrying a severity, the offending module (if any) and a message.  The
experiments call :func:`validate_soc` on every benchmark before running, so
a corrupted benchmark file fails loudly instead of silently producing odd
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Sequence

from repro.soc.module import Module
from repro.soc.soc import Soc


class Severity(Enum):
    """Severity of a validation issue."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class ValidationIssue:
    """A single finding produced by :func:`validate_soc`."""

    severity: Severity
    message: str
    module_name: str | None = None

    def __str__(self) -> str:
        where = f" [{self.module_name}]" if self.module_name else ""
        return f"{self.severity.value.upper()}{where}: {self.message}"


# Thresholds for the soft checks.  They are deliberately generous: ITC'02
# benchmarks contain modules with hundreds of scan chains and tens of
# thousands of flip-flops, which is perfectly normal.
_MAX_REASONABLE_SCAN_CHAINS = 1024
_MAX_REASONABLE_CHAIN_LENGTH = 100_000
_MAX_REASONABLE_PATTERNS = 10_000_000
_MAX_REASONABLE_TERMINALS = 100_000


def _validate_module(module: Module) -> list[ValidationIssue]:
    issues: list[ValidationIssue] = []
    if module.num_scan_chains > _MAX_REASONABLE_SCAN_CHAINS:
        issues.append(
            ValidationIssue(
                Severity.WARNING,
                f"{module.num_scan_chains} scan chains is unusually large",
                module.name,
            )
        )
    for chain in module.scan_chains:
        if chain.length > _MAX_REASONABLE_CHAIN_LENGTH:
            issues.append(
                ValidationIssue(
                    Severity.WARNING,
                    f"scan chain {chain.name or '?'} has length {chain.length}, "
                    "which is unusually long",
                    module.name,
                )
            )
            break
    if module.patterns > _MAX_REASONABLE_PATTERNS:
        issues.append(
            ValidationIssue(
                Severity.WARNING,
                f"pattern count {module.patterns} is unusually large",
                module.name,
            )
        )
    if module.patterns == 1:
        issues.append(
            ValidationIssue(
                Severity.INFO,
                "single-pattern module; test time will be dominated by one scan load",
                module.name,
            )
        )
    terminals = module.inputs + module.outputs + module.bidirs
    if terminals > _MAX_REASONABLE_TERMINALS:
        issues.append(
            ValidationIssue(
                Severity.WARNING,
                f"{terminals} functional terminals is unusually large",
                module.name,
            )
        )
    if module.num_scan_chains == 0 and terminals > 1000:
        issues.append(
            ValidationIssue(
                Severity.WARNING,
                "module has no scan chains but more than 1000 terminals; "
                "wrapper chains will be built from terminal cells only",
                module.name,
            )
        )
    return issues


def validate_soc(soc: Soc) -> list[ValidationIssue]:
    """Run all soft checks on ``soc`` and return the findings.

    An empty list means the description looks healthy.  Hard structural
    errors are impossible here because they are rejected at construction
    time by the dataclasses themselves.
    """
    issues: list[ValidationIssue] = []
    for module in soc.modules:
        issues.extend(_validate_module(module))
    if len(soc.modules) > 2000:
        issues.append(
            ValidationIssue(
                Severity.WARNING,
                f"SOC has {len(soc.modules)} modules; optimisation will be slow",
            )
        )
    if soc.test_data_volume_bits == 0:
        issues.append(
            ValidationIssue(Severity.ERROR, "SOC has zero test-data volume")
        )
    return issues


def has_errors(issues: Sequence[ValidationIssue]) -> bool:
    """Return True when any issue has :class:`Severity.ERROR`."""
    return any(issue.severity is Severity.ERROR for issue in issues)


def format_issues(issues: Sequence[ValidationIssue]) -> str:
    """Format issues as a newline-separated report (empty string if none)."""
    return "\n".join(str(issue) for issue in issues)
