"""Data model for a single testable module (embedded core) of an SOC.

The paper's Problem 1 characterises each module ``m`` by

* the number of test patterns ``p(m)``,
* the number of functional input terminals ``i(m)``,
* functional output terminals ``o(m)``,
* functional bidirectional terminals ``b(m)``,
* the number of internal scan chains ``s(m)`` and the length of each chain.

This module provides immutable dataclasses for scan chains and modules,
together with the derived quantities used throughout the library (total
scan flip-flops, test-data volume, terminal counts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Sequence

from repro.core.exceptions import InvalidSocError
from repro.core.fingerprint import pickle_state


@dataclass(frozen=True)
class ScanChain:
    """A single internal scan chain of a module.

    Parameters
    ----------
    length:
        Number of scan flip-flops on the chain.  Must be positive; a module
        without scan is represented by an empty scan-chain list, not by
        zero-length chains.
    name:
        Optional identifier, used only for reporting.
    """

    length: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise InvalidSocError(f"scan chain length must be positive, got {self.length}")


@dataclass(frozen=True)
class Module:
    """A testable module (embedded core) of an SOC.

    The test of a module consists of ``patterns`` scan test patterns applied
    through a wrapper of some width ``w``; the wrapper design and the
    resulting test time are computed by :mod:`repro.wrapper`.

    Attributes
    ----------
    name:
        Unique module name within its SOC.
    inputs:
        Number of functional input terminals.
    outputs:
        Number of functional output terminals.
    bidirs:
        Number of functional bidirectional terminals.
    scan_chains:
        Internal scan chains (possibly empty for combinational cores or
        BIST-ed memories whose wrapper only carries functional terminals).
    patterns:
        Number of test patterns.
    is_memory:
        Marker used by synthetic SOC generators and reports; has no influence
        on wrapper or TAM design.
    """

    name: str
    inputs: int
    outputs: int
    bidirs: int
    scan_chains: tuple[ScanChain, ...]
    patterns: int
    is_memory: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidSocError("module name must be non-empty")
        for label, value in (
            ("inputs", self.inputs),
            ("outputs", self.outputs),
            ("bidirs", self.bidirs),
            ("patterns", self.patterns),
        ):
            if value < 0:
                raise InvalidSocError(f"module {self.name!r}: {label} must be >= 0, got {value}")
        if self.patterns == 0:
            raise InvalidSocError(f"module {self.name!r}: pattern count must be positive")
        if self.inputs + self.outputs + self.bidirs + len(self.scan_chains) == 0:
            raise InvalidSocError(
                f"module {self.name!r}: must have at least one terminal or scan chain"
            )
        # Normalise to a tuple so Module stays hashable even when a list of
        # chains is passed in.
        if not isinstance(self.scan_chains, tuple):
            object.__setattr__(self, "scan_chains", tuple(self.scan_chains))

    def __hash__(self) -> int:
        # Structural hash cached on first use; see repro.core.fingerprint.
        fingerprint = self.__dict__.get("_fingerprint")
        if fingerprint is None:
            fingerprint = hash(
                (
                    self.name,
                    self.inputs,
                    self.outputs,
                    self.bidirs,
                    self.scan_chains,
                    self.patterns,
                    self.is_memory,
                )
            )
            object.__setattr__(self, "_fingerprint", fingerprint)
        return fingerprint

    __getstate__ = pickle_state

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def num_scan_chains(self) -> int:
        """Number of internal scan chains."""
        return len(self.scan_chains)

    @cached_property
    def scan_lengths(self) -> tuple[int, ...]:
        """Lengths of the internal scan chains, in declaration order."""
        return tuple(chain.length for chain in self.scan_chains)

    @property
    def total_scan_flipflops(self) -> int:
        """Total number of scan flip-flops over all internal chains."""
        return sum(chain.length for chain in self.scan_chains)

    @property
    def scan_in_bits(self) -> int:
        """Bits that must be shifted in per pattern (scan cells + input cells)."""
        return self.total_scan_flipflops + self.inputs + self.bidirs

    @property
    def scan_out_bits(self) -> int:
        """Bits that must be shifted out per pattern (scan cells + output cells)."""
        return self.total_scan_flipflops + self.outputs + self.bidirs

    @property
    def wrapper_input_cells(self) -> int:
        """Number of wrapper input cells (functional inputs + bidirectionals)."""
        return self.inputs + self.bidirs

    @property
    def wrapper_output_cells(self) -> int:
        """Number of wrapper output cells (functional outputs + bidirectionals)."""
        return self.outputs + self.bidirs

    @property
    def test_data_volume_bits(self) -> int:
        """Total stimulus + response volume in bits over the whole test.

        Used only for reporting and for the theoretical lower bound on the
        number of ATE channels; the precise test time additionally depends on
        how well the wrapper balances the scan-in and scan-out loads.
        """
        return self.patterns * (self.scan_in_bits + self.scan_out_bits)

    @property
    def max_useful_width(self) -> int:
        """Wrapper width beyond which adding more TAM wires cannot help.

        A wrapper chain must receive at least one scan element (scan chain,
        input cell or output cell); the number of distinct non-empty wrapper
        chains is therefore bounded by the larger of the scan-in and scan-out
        item counts.
        """
        in_items = self.num_scan_chains + self.wrapper_input_cells
        out_items = self.num_scan_chains + self.wrapper_output_cells
        return max(1, in_items, out_items)

    def describe(self) -> str:
        """One-line human-readable summary used by reports and the CLI."""
        kind = "memory" if self.is_memory else "logic"
        return (
            f"{self.name} ({kind}): {self.inputs} in / {self.outputs} out / "
            f"{self.bidirs} bidir, {self.num_scan_chains} scan chains "
            f"({self.total_scan_flipflops} FF), {self.patterns} patterns"
        )


def make_module(
    name: str,
    inputs: int,
    outputs: int,
    bidirs: int,
    scan_lengths: Sequence[int] | Iterable[int],
    patterns: int,
    is_memory: bool = False,
) -> Module:
    """Convenience constructor building a :class:`Module` from chain lengths.

    >>> core = make_module("s838", 34, 1, 0, [32], 75)
    >>> core.total_scan_flipflops
    32
    """
    chains = tuple(
        ScanChain(length=length, name=f"{name}.sc{index}")
        for index, length in enumerate(scan_lengths)
    )
    return Module(
        name=name,
        inputs=inputs,
        outputs=outputs,
        bidirs=bidirs,
        scan_chains=chains,
        patterns=patterns,
        is_memory=is_memory,
    )
