"""Name-addressable SOC catalog: every SOC the system can reach by string.

Before this module existed, :func:`repro.api.scenario.resolve_soc`
hard-wired exactly two string forms -- ``"pnx8550"`` and the registered
ITC'02 benchmark names -- so the scenario space was capped at five chips.
The catalog unifies *all* name-addressable SOCs behind one lookup:

* the ITC'02 benchmarks (``d695``, ``p22810``, ``p34392``, ``p93791``),
  delegated to :mod:`repro.itc02.registry`;
* ``pnx8550``, the paper's synthetic Philips SOC model;
* parametric synthetic families: any name of the form
  ``synthetic:<seed>:<modules>`` resolves to a deterministic
  :func:`~repro.soc.synthetic.make_synthetic_soc` chip with ``<modules>``
  modules generated from ``<seed>`` -- an unbounded supply of SOCs that
  sweep grids can span by string (see :func:`synthetic_family`);
* anything user code registers via :func:`register_catalog_soc`.

Every resolution path is cached, so resolving the same name repeatedly
(scenario canonical keys do this constantly) builds each SOC once per
process.  Names are case-insensitive, matching the benchmark registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from repro.core.exceptions import ConfigurationError
from repro.soc.soc import Soc
from repro.soc.synthetic import (
    LogicModuleProfile,
    MemoryModuleProfile,
    make_synthetic_soc,
)

#: Name prefix of parametric synthetic SOC specs.
SYNTHETIC_PREFIX = "synthetic"

#: Human-readable form of the synthetic spec, used in listings and errors.
SYNTHETIC_PATTERN = "synthetic:<seed>:<modules>"

#: Best-case test-data area per module used to calibrate catalog synthetics.
#: Scaling with the module count keeps every family member in the same
#: operating regime on the reference ATE, whatever its size.
SYNTHETIC_AREA_PER_MODULE = 400_000

#: Module-size profiles of catalog synthetics: deliberately compact modules
#: (short scan chains, modest pattern counts) so family members are
#: feasible from ~0.5 M vectors of ATE depth upward and solve quickly --
#: these chips exist to scale *campaigns*, not to stress single solves.
SYNTHETIC_LOGIC_PROFILE = LogicModuleProfile(
    median_flipflops=800,
    sigma_flipflops=0.9,
    min_flipflops=50,
    max_flipflops=8_000,
    median_patterns=150,
    sigma_patterns=0.8,
    min_patterns=20,
    max_patterns=1_500,
    target_chain_length=200,
)
SYNTHETIC_MEMORY_PROFILE = MemoryModuleProfile(
    median_patterns=100,
    min_patterns=10,
    max_patterns=800,
)


@dataclass(frozen=True)
class CatalogEntry:
    """One named SOC the catalog can resolve.

    ``loader`` builds (or returns a cached) :class:`Soc`; ``description``
    is the one-liner shown by CLI listings.
    """

    name: str
    description: str
    loader: Callable[[], Soc]


_EXTRA: dict[str, CatalogEntry] = {}


def register_catalog_soc(
    name: str, description: str
) -> Callable[[Callable[[], Soc]], Callable[[], Soc]]:
    """Function decorator registering a SOC loader under ``name``.

    The name becomes resolvable by every string-accepting surface:
    ``Scenario(soc=name)``, grid SOC axes, and the CLI.

    >>> @register_catalog_soc("mychip", description="demo")   # doctest: +SKIP
    ... def _load_mychip() -> Soc:
    ...     ...
    """
    if not name:
        raise ConfigurationError("catalog SOC name must be non-empty")
    key = name.lower()

    def decorator(loader: Callable[[], Soc]) -> Callable[[], Soc]:
        if key in _EXTRA or key in _builtin_entries():
            raise ConfigurationError(f"catalog SOC {name!r} is already registered")
        if key.split(":", 1)[0] == SYNTHETIC_PREFIX:
            raise ConfigurationError(
                f"catalog SOC name {name!r} collides with the reserved "
                f"{SYNTHETIC_PATTERN} family"
            )
        _EXTRA[key] = CatalogEntry(name=key, description=description, loader=loader)
        return loader

    return decorator


@lru_cache(maxsize=1)
def _builtin_entries() -> dict[str, CatalogEntry]:
    """The always-available entries: ITC'02 benchmarks + pnx8550.

    Cached: this sits on the scenario canonical-key hot path (every
    string-SOC ``canonical_key()`` resolves through the catalog), and the
    benchmark registry is static.
    """
    from repro.itc02.registry import list_benchmarks, load_benchmark
    from repro.soc.pnx8550 import make_pnx8550

    entries: dict[str, CatalogEntry] = {}
    for info in list_benchmarks():
        entries[info.name] = CatalogEntry(
            name=info.name,
            description=info.description,
            loader=lambda name=info.name: load_benchmark(name),
        )
    entries["pnx8550"] = CatalogEntry(
        name="pnx8550",
        description="Philips PNX8550 model (62 logic + 212 memory modules), "
        "the paper's single-chip subject",
        loader=make_pnx8550,
    )
    return entries


def parse_synthetic_spec(name: str) -> tuple[int, int] | None:
    """Parse a ``synthetic:<seed>:<modules>`` spec into ``(seed, modules)``.

    Returns ``None`` for names outside the ``synthetic:`` family; raises
    :class:`ConfigurationError` for names inside it that are malformed,
    so typos fail loudly instead of falling through to "unknown SOC".
    """
    parts = name.lower().split(":")
    if parts[0] != SYNTHETIC_PREFIX:
        return None
    if len(parts) != 3:
        raise ConfigurationError(
            f"malformed synthetic SOC spec {name!r}; expected {SYNTHETIC_PATTERN}"
        )
    try:
        seed, modules = int(parts[1]), int(parts[2])
    except ValueError:
        raise ConfigurationError(
            f"malformed synthetic SOC spec {name!r}; seed and module count "
            f"must be integers ({SYNTHETIC_PATTERN})"
        ) from None
    if seed < 0:
        raise ConfigurationError(f"synthetic SOC seed must be non-negative, got {seed}")
    if modules <= 0:
        raise ConfigurationError(
            f"synthetic SOC module count must be positive, got {modules}"
        )
    return seed, modules


def synthetic_soc_name(seed: int, modules: int) -> str:
    """The canonical catalog name of one synthetic SOC."""
    return f"{SYNTHETIC_PREFIX}:{seed}:{modules}"


def synthetic_family(seed: int, count: int, modules: int) -> tuple[str, ...]:
    """Catalog names of a family of ``count`` synthetic SOCs.

    Family members share the module count but differ in seed
    (``seed .. seed + count - 1``), so they populate a sweep's SOC axis
    with structurally similar yet distinct chips::

        grid = SweepGrid(synthetic_family(42, count=10, modules=8), cell, ...)
    """
    if count <= 0:
        raise ConfigurationError(f"synthetic family size must be positive, got {count}")
    return tuple(synthetic_soc_name(seed + offset, modules) for offset in range(count))


@lru_cache(maxsize=None)
def _make_synthetic(seed: int, modules: int) -> Soc:
    """Build (once per process) the SOC a synthetic spec names."""
    num_memory = modules // 4
    num_logic = modules - num_memory
    return make_synthetic_soc(
        name=synthetic_soc_name(seed, modules),
        num_logic=num_logic,
        num_memory=num_memory,
        seed=seed,
        target_min_area=modules * SYNTHETIC_AREA_PER_MODULE,
        logic_profile=SYNTHETIC_LOGIC_PROFILE,
        memory_profile=SYNTHETIC_MEMORY_PROFILE,
    )


def catalog_names() -> tuple[str, ...]:
    """Names of every *fixed* catalog entry, sorted.

    The synthetic family is parametric (unbounded), so it is not listed
    here; see :data:`SYNTHETIC_PATTERN`.
    """
    return tuple(sorted({**_builtin_entries(), **_EXTRA}))


def list_catalog() -> tuple[CatalogEntry, ...]:
    """Every fixed catalog entry with its description, sorted by name."""
    entries = {**_builtin_entries(), **_EXTRA}
    return tuple(entries[name] for name in sorted(entries))


def resolve_catalog_soc(name: str) -> Soc:
    """Resolve a catalog name into a :class:`Soc`.

    Raises
    ------
    ConfigurationError
        When the name is malformed or names nothing in the catalog.
    """
    spec = parse_synthetic_spec(name)
    if spec is not None:
        return _make_synthetic(*spec)
    key = name.lower()
    entry = _EXTRA.get(key) or _builtin_entries().get(key)
    if entry is None:
        known = ", ".join(catalog_names())
        raise ConfigurationError(
            f"unknown benchmark or catalog SOC {name!r}; "
            f"known: {known}, {SYNTHETIC_PATTERN}"
        )
    return entry.loader()
