"""Pluggable optimisation objectives (what the solvers optimise).

The objective is a first-class scenario axis, mirroring the solver axis:
``Scenario(objective="cost_per_good_die")`` makes every registered solver
backend optimise that objective through the shared evaluation kernel, and
``Scenario.sweep(..., objectives=[...])`` / ``SweepGrid(...,
objectives=[...])`` sweep it like channels or depths.  ``python -m repro
objectives`` lists the registered backends; registering a new one is one
decorated function (see docs/objectives.md).
"""

from repro.objectives.registry import (
    DEFAULT_OBJECTIVE,
    ObjectiveSpec,
    get_objective,
    list_objectives,
    objective_names,
    register_objective,
)

__all__ = [
    "DEFAULT_OBJECTIVE",
    "ObjectiveSpec",
    "get_objective",
    "list_objectives",
    "objective_names",
    "register_objective",
]
