"""Registry of optimisation objectives for the test-infrastructure problem.

The paper's core question is economic, not just temporal: the best test
architecture depends on *what is being optimised* -- raw test time,
multi-site throughput, or ATE cost per good die.  This registry mirrors the
solver registry (:mod:`repro.solvers.registry`): each objective backend
registers an evaluation callable under a name with
:func:`register_objective`, and every layer above -- the shared evaluation
kernel (:mod:`repro.solvers.evaluate`), the Step-2 site search, the
scenario :class:`~repro.api.engine.Engine` and the CLI -- looks objectives
up by name instead of hard-wiring the throughput formula.  The built-in
backends (:mod:`repro.objectives.backends`):

* ``"throughput"`` -- devices per hour, ``D_th`` or ``D^u_th`` (the
  default; exactly the behaviour before the registry existed);
* ``"test_time"`` -- raw test application time per touchdown, minimised;
* ``"cost_per_good_die"`` -- amortised ATE capital per good die, built on
  the Section-7 :class:`~repro.ate.pricing.AtePricing` street prices;
* ``"channel_budget"`` -- throughput per employed ATE channel.

An :class:`ObjectiveSpec` carries a *sense* (``"max"`` or ``"min"``);
solvers compare candidates through :meth:`ObjectiveSpec.signed` so a
minimised objective needs no special-casing anywhere in the search code.

Backend modules are imported lazily on first lookup, so importing this
module never creates a cycle with the evaluation stack.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable

from repro.core.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ate.spec import AteSpec
    from repro.multisite.batch import ScenarioBatch
    from repro.multisite.throughput import MultiSiteScenario
    from repro.optimize.config import OptimizationConfig

#: ``backend(scenario, config, ate) -> float``: evaluate one multi-site
#: configuration.  The scenario carries sites/timing/yields, the config the
#: variant switches, and the ATE the machine the cost objectives price.
ObjectiveBackend = Callable[["MultiSiteScenario", "OptimizationConfig", "AteSpec"], float]

#: ``array_backend(batch, config, ate) -> ndarray``: evaluate a whole
#: :class:`~repro.multisite.batch.ScenarioBatch` at once.  Must be
#: bit-identical, point for point, to the scalar backend of the same name.
ArrayObjectiveBackend = Callable[["ScenarioBatch", "OptimizationConfig", "AteSpec"], Any]

#: Name of the objective used when no objective is specified anywhere.
#: Scenarios running this objective keep their pre-registry canonical keys
#: (and therefore their store records and digests).
DEFAULT_OBJECTIVE = "throughput"

#: The two legal optimisation senses.
SENSES = ("max", "min")


@dataclass(frozen=True)
class ObjectiveSpec:
    """One registered optimisation objective.

    Attributes
    ----------
    name:
        Registry name; scenarios reference objectives by it.
    title:
        Short label CLI listings print.
    backend:
        The evaluation callable (see :data:`ObjectiveBackend`).
    sense:
        ``"max"`` when larger values are better, ``"min"`` otherwise.
    units:
        Unit string reports print next to values.
    description:
        One-line explanation shown by ``repro objectives``.
    """

    name: str
    title: str
    backend: ObjectiveBackend
    sense: str = "max"
    units: str = ""
    description: str = ""
    array_backend: ArrayObjectiveBackend | None = None

    def __post_init__(self) -> None:
        if self.sense not in SENSES:
            raise ConfigurationError(
                f"objective sense must be one of {SENSES}, got {self.sense!r}"
            )

    @property
    def maximize(self) -> bool:
        """``True`` when larger objective values are better."""
        return self.sense == "max"

    def value(
        self,
        scenario: "MultiSiteScenario",
        config: "OptimizationConfig",
        ate: "AteSpec",
    ) -> float:
        """Evaluate the objective for one multi-site configuration."""
        return self.backend(scenario, config, ate)

    def value_batch(
        self,
        batch: "ScenarioBatch",
        config: "OptimizationConfig",
        ate: "AteSpec",
    ) -> Any:
        """Evaluate the objective for a whole batch of configurations.

        Only callable when the objective registered an array backend
        (``array_backend is not None``); the evaluation kernel falls back
        to per-point :meth:`value` calls otherwise.
        """
        if self.array_backend is None:
            raise ConfigurationError(
                f"objective {self.name!r} has no array backend registered"
            )
        return self.array_backend(batch, config, ate)

    def signed(self, value: float) -> float:
        """Map a raw objective value onto the maximise convention.

        Solvers always *maximise* the signed value, so a ``"min"``
        objective contributes its negation -- candidate ranking code never
        needs to branch on the sense.
        """
        return value if self.maximize else -value

    def describe_value(self, value: float) -> str:
        """Render a value with its units, as reports print it."""
        units = f" {self.units}" if self.units else ""
        return f"{value:.4g}{units}"


_REGISTRY: dict[str, ObjectiveSpec] = {}


def register_objective(
    name: str,
    title: str,
    sense: str = "max",
    units: str = "",
    description: str = "",
) -> Callable[[ObjectiveBackend], ObjectiveBackend]:
    """Function decorator registering an objective backend under ``name``.

    >>> @register_objective("demo", title="Demo", sense="min")   # doctest: +SKIP
    ... def _evaluate_demo(scenario, config, ate):
    ...     ...
    """
    if not name:
        raise ConfigurationError("objective name must be non-empty")

    def decorator(backend: ObjectiveBackend) -> ObjectiveBackend:
        if name in _REGISTRY:
            raise ConfigurationError(f"objective {name!r} is already registered")
        _REGISTRY[name] = ObjectiveSpec(
            name=name,
            title=title,
            backend=backend,
            sense=sense,
            units=units,
            description=description,
        )
        return backend

    return decorator


def register_array_backend(name: str, backend: ArrayObjectiveBackend) -> ArrayObjectiveBackend:
    """Attach a vectorised array form to an already-registered objective.

    The array form must be bit-identical, point for point, to the scalar
    backend of the same name -- the kernel interleaves batch and scalar
    evaluations through one memo, and ``repro all`` digests depend on the
    results not depending on the path taken.
    """
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"cannot attach array backend: objective {name!r} is not registered"
        )
    _REGISTRY[name] = replace(_REGISTRY[name], array_backend=backend)
    return backend


def _ensure_backends() -> None:
    """Import the built-in backend module (self-registration side effect)."""
    import repro.objectives.backends  # noqa: F401


def get_objective(name: str) -> ObjectiveSpec:
    """Look an objective up by name.

    Raises
    ------
    ConfigurationError
        When no objective of that name is registered.
    """
    _ensure_backends()
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(f"unknown objective {name!r}; registered: {known}")
    return _REGISTRY[name]


def objective_names() -> tuple[str, ...]:
    """Names of all registered objectives, sorted."""
    _ensure_backends()
    return tuple(sorted(_REGISTRY))


def list_objectives() -> tuple[ObjectiveSpec, ...]:
    """All registered objectives, sorted by name."""
    return tuple(_REGISTRY[name] for name in objective_names())
