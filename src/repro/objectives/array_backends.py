"""Vectorised array twins of the built-in objective backends.

Each function here evaluates a whole
:class:`~repro.multisite.batch.ScenarioBatch` at once and is registered
next to the scalar backend of the same name via
:func:`~repro.objectives.registry.register_array_backend`.  The contract is
bit-identity: every expression performs the same IEEE-754 double operations
in the same order as the scalar backend, so the evaluation kernel may route
any point through either path without changing a single output byte (the
kernel equivalence test suite pins this).

Importing this module requires numpy; :mod:`repro.objectives.backends`
imports it in a ``try`` block, so the scalar objective stack keeps working
when numpy is unavailable.
"""

from __future__ import annotations

import numpy as np

from repro.ate.spec import AteSpec
from repro.multisite.batch import ScenarioBatch
from repro.objectives.registry import register_array_backend
from repro.optimize.config import Objective, OptimizationConfig


def _evaluate_throughput_array(
    batch: ScenarioBatch, config: OptimizationConfig, ate: AteSpec
) -> np.ndarray:
    """Array twin of ``throughput``: ``D_th``, or ``D^u_th`` under re-test."""
    if config.objective is Objective.UNIQUE_THROUGHPUT:
        return batch.unique_throughput(abort_on_fail=config.abort_on_fail)
    return batch.throughput(abort_on_fail=config.abort_on_fail)


def _evaluate_test_time_array(
    batch: ScenarioBatch, config: OptimizationConfig, ate: AteSpec
) -> np.ndarray:
    """Array twin of ``test_time``: ``t_t`` per touchdown, in seconds."""
    return batch.test_time_s(abort_on_fail=config.abort_on_fail)


def _total_channels_used_array(
    channels_per_site: np.ndarray, sites: np.ndarray, broadcast: bool
) -> np.ndarray:
    """Array twin of :func:`~repro.optimize.channels.total_channels_used`."""
    half = channels_per_site // 2
    if broadcast:
        return half + sites * half
    return sites * channels_per_site


def _evaluate_cost_per_good_die_array(
    batch: ScenarioBatch, config: OptimizationConfig, ate: AteSpec
) -> np.ndarray:
    """Array twin of ``cost_per_good_die`` (inf where no good dies emerge)."""
    from repro.objectives.backends import DEFAULT_PRICING, DEPRECIATION_HOURS

    employed = _total_channels_used_array(
        batch.channels_per_site, batch.sites, config.broadcast
    )
    capital = employed * (
        DEFAULT_PRICING.price_per_channel()
        + ate.depth * DEFAULT_PRICING.price_per_vector_per_channel()
    )
    good_dies_per_hour = (
        batch.throughput(abort_on_fail=config.abort_on_fail) * batch.manufacturing_yield
    )
    values = np.full(len(batch), np.inf, dtype=np.float64)
    positive = good_dies_per_hour > 0.0
    np.divide(
        capital, DEPRECIATION_HOURS * good_dies_per_hour, out=values, where=positive
    )
    return values


def _evaluate_channel_budget_array(
    batch: ScenarioBatch, config: OptimizationConfig, ate: AteSpec
) -> np.ndarray:
    """Array twin of ``channel_budget``: devices/hour per employed channel."""
    return batch.throughput(abort_on_fail=config.abort_on_fail) / _total_channels_used_array(
        batch.channels_per_site, batch.sites, config.broadcast
    )


def attach() -> None:
    """Register every array backend next to its scalar twin (idempotent)."""
    register_array_backend("throughput", _evaluate_throughput_array)
    register_array_backend("test_time", _evaluate_test_time_array)
    register_array_backend("cost_per_good_die", _evaluate_cost_per_good_die_array)
    register_array_backend("channel_budget", _evaluate_channel_budget_array)
