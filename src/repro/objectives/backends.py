"""Built-in objective backends: what a multi-site configuration is worth.

Every backend evaluates one fully-specified multi-site configuration (a
:class:`~repro.multisite.throughput.MultiSiteScenario` plus the
:class:`~repro.optimize.config.OptimizationConfig` switches and the target
:class:`~repro.ate.spec.AteSpec`) into a single float; the
:class:`~repro.objectives.registry.ObjectiveSpec` records whether larger or
smaller is better.  All four backends are deterministic functions of their
inputs, so the shared evaluation kernel can memoise them like any other
``(design, sites)`` computation.

The cost objective prices ATE capacity at the paper's Section-7 street
prices (:class:`~repro.ate.pricing.AtePricing` defaults).  The pricing
model is deliberately *not* a scenario field: objective values must depend
only on the registered name and the evaluated point, so equal scenarios
share one cache entry.  A custom pricing model becomes a custom objective
-- register a closure over your own :class:`AtePricing` under a new name.
"""

from __future__ import annotations

import math

from repro.ate.pricing import AtePricing
from repro.ate.spec import AteSpec
from repro.multisite.throughput import MultiSiteScenario
from repro.objectives.registry import register_objective
from repro.optimize.channels import total_channels_used
from repro.optimize.config import Objective, OptimizationConfig

#: Street-price model of the cost objectives (the paper's Section 7 figures).
DEFAULT_PRICING = AtePricing()

#: Depreciation horizon the capital cost is amortised over: five years of
#: around-the-clock wafer testing (5 * 365 * 24 hours).
DEPRECIATION_HOURS = 43_800.0


@register_objective(
    "throughput",
    title="Devices tested per hour (default)",
    sense="max",
    units="devices/hour",
    description="Eq. 4.5 throughput D_th, or the unique-device D^u_th when "
    "the config selects re-test; the paper's objective",
)
def evaluate_throughput(
    scenario: MultiSiteScenario, config: OptimizationConfig, ate: AteSpec
) -> float:
    """The paper's objective: ``D_th``, or ``D^u_th`` under re-test."""
    if config.objective is Objective.UNIQUE_THROUGHPUT:
        return scenario.unique_throughput(abort_on_fail=config.abort_on_fail)
    return scenario.throughput(abort_on_fail=config.abort_on_fail)


@register_objective(
    "test_time",
    title="Test application time per touchdown",
    sense="min",
    units="s",
    description="Raw test time t_t in seconds (abort-on-fail aware); "
    "favours spending the whole channel budget on few, wide sites",
)
def evaluate_test_time(
    scenario: MultiSiteScenario, config: OptimizationConfig, ate: AteSpec
) -> float:
    """Test application time ``t_t`` of one touchdown, in seconds."""
    return scenario.test_time_s(abort_on_fail=config.abort_on_fail)


@register_objective(
    "cost_per_good_die",
    title="Amortised ATE capital per good die",
    sense="min",
    units="USD/die",
    description="Street-price capital of the employed channels, amortised "
    "over five years, divided by good dies per hour",
)
def evaluate_cost_per_good_die(
    scenario: MultiSiteScenario, config: OptimizationConfig, ate: AteSpec
) -> float:
    """ATE capital per good die under the Section-7 street prices.

    The employed capacity -- the channels the configuration actually
    consumes, broadcast-aware via
    :func:`~repro.optimize.channels.total_channels_used` (sites share the
    stimulus channels under broadcast) -- is valued at the ATE's full
    vector depth with :meth:`~repro.ate.pricing.AtePricing.capital_cost_usd`,
    amortised over :data:`DEPRECIATION_HOURS`, and divided by the good-die
    rate (throughput times manufacturing yield).  Giving up a site both
    frees capital and shortens the test time, so the minimum is a genuine
    trade-off point.  A configuration that yields no good dies at all
    (``manufacturing_yield == 0``) costs ``inf`` per die -- the worst
    possible value for this minimised objective, never an error.
    """
    employed = total_channels_used(
        scenario.channels_per_site, scenario.sites, config.broadcast
    )
    capital = DEFAULT_PRICING.capital_cost_usd(employed, ate.depth)
    good_dies_per_hour = scenario.throughput(
        abort_on_fail=config.abort_on_fail
    ) * scenario.manufacturing_yield
    if good_dies_per_hour <= 0.0:
        return math.inf
    return capital / (DEPRECIATION_HOURS * good_dies_per_hour)


@register_objective(
    "channel_budget",
    title="Throughput per employed ATE channel",
    sense="max",
    units="devices/hour/channel",
    description="Eq. 4.5 throughput divided by the employed channels "
    "(broadcast-aware: sites share stimulus channels); the "
    "channel-efficiency view",
)
def evaluate_channel_budget(
    scenario: MultiSiteScenario, config: OptimizationConfig, ate: AteSpec
) -> float:
    """Devices per hour per employed ATE channel (broadcast-aware)."""
    return scenario.throughput(abort_on_fail=config.abort_on_fail) / total_channels_used(
        scenario.channels_per_site, scenario.sites, config.broadcast
    )


# Attach the vectorised array twins (bit-identical, used by the batch
# evaluation kernel).  Optional: without numpy the scalar backends above
# cover everything, just without the batch fast path.
try:
    from repro.objectives import array_backends as _array_backends
except ImportError:  # pragma: no cover - exercised only without numpy
    pass
else:
    _array_backends.attach()
