"""ATE, probe-station and pricing models."""

from repro.ate.spec import AteSpec, reference_ate
from repro.ate.probe_station import ProbeStation, reference_probe_station
from repro.ate.pricing import (
    AtePricing,
    DEFAULT_CHANNEL_BLOCK_PRICE_USD,
    DEFAULT_CHANNEL_BLOCK_SIZE,
    DEFAULT_MEMORY_UPGRADE_PRICE_USD,
)

__all__ = [
    "AteSpec",
    "reference_ate",
    "ProbeStation",
    "reference_probe_station",
    "AtePricing",
    "DEFAULT_CHANNEL_BLOCK_PRICE_USD",
    "DEFAULT_CHANNEL_BLOCK_SIZE",
    "DEFAULT_MEMORY_UPGRADE_PRICE_USD",
]
