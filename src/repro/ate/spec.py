"""Automatic Test Equipment (ATE) specification.

The paper assumes a *given and fixed* target test cell: an ATE with ``N``
digital channels, each backed by a vector memory of depth ``D`` vectors, a
test-clock frequency, and a probe station characterised by its index time.
This module models the ATE itself; the probe station lives in
:mod:`repro.ate.probe_station` and upgrade pricing in
:mod:`repro.ate.pricing`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.exceptions import ConfigurationError
from repro.core.fingerprint import pickle_state
from repro.core.units import cycles_to_seconds, format_depth, mega_vectors


@dataclass(frozen=True)
class AteSpec:
    """A fixed ATE configuration.

    Attributes
    ----------
    channels:
        Total number of digital ATE channels (``N`` in the paper).
    depth:
        Vector-memory depth per channel in vectors (``D``).  One test-clock
        cycle consumes one vector on every channel.
    frequency_hz:
        Test-clock frequency; the paper uses 5 MHz.
    name:
        Optional label for reports.
    """

    channels: int
    depth: int
    frequency_hz: float = 5_000_000.0
    name: str = "ate"

    def __post_init__(self) -> None:
        if self.channels <= 0:
            raise ConfigurationError(f"ATE must have a positive channel count, got {self.channels}")
        if self.depth <= 0:
            raise ConfigurationError(f"ATE vector-memory depth must be positive, got {self.depth}")
        if self.frequency_hz <= 0:
            raise ConfigurationError(
                f"ATE test-clock frequency must be positive, got {self.frequency_hz}"
            )

    def __hash__(self) -> int:
        # Structural hash cached on first use; see repro.core.fingerprint.
        fingerprint = self.__dict__.get("_fingerprint")
        if fingerprint is None:
            fingerprint = hash((self.channels, self.depth, self.frequency_hz, self.name))
            object.__setattr__(self, "_fingerprint", fingerprint)
        return fingerprint

    __getstate__ = pickle_state

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def max_tam_width(self) -> int:
        """Maximum SOC TAM width the ATE can drive for a single site.

        Every TAM wire needs one stimulus channel and one response channel,
        so the width is bounded by half the channel count.
        """
        return self.channels // 2

    @property
    def total_vector_memory(self) -> int:
        """Total vector memory over all channels (vectors)."""
        return self.channels * self.depth

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert test-clock cycles to seconds at this ATE's frequency."""
        return cycles_to_seconds(cycles, self.frequency_hz)

    def fits(self, cycles: int) -> bool:
        """True when a test of ``cycles`` cycles fits in the vector memory."""
        return cycles <= self.depth

    # ------------------------------------------------------------------
    # Derived configurations (used by the Figure 6 sweeps)
    # ------------------------------------------------------------------
    def with_channels(self, channels: int) -> "AteSpec":
        """Return a copy of this spec with a different channel count."""
        return replace(self, channels=channels)

    def with_depth(self, depth: int) -> "AteSpec":
        """Return a copy of this spec with a different vector-memory depth."""
        return replace(self, depth=depth)

    def describe(self) -> str:
        """One-line summary used by reports and the CLI."""
        return (
            f"{self.name}: {self.channels} channels x {format_depth(self.depth)} vectors, "
            f"{self.frequency_hz / 1e6:g} MHz test clock"
        )


def reference_ate(channels: int = 512, depth_m: float = 7, frequency_mhz: float = 5.0) -> AteSpec:
    """The paper's reference ATE: 512 channels, 7 M vectors, 5 MHz test clock."""
    return AteSpec(
        channels=channels,
        depth=mega_vectors(depth_m),
        frequency_hz=frequency_mhz * 1e6,
        name=f"ate-{channels}x{depth_m:g}M",
    )
