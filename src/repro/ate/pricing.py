"""ATE upgrade pricing model.

Section 7 of the paper argues that, per dollar, deepening the ATE vector
memory buys more throughput than adding ATE channels, quoting street prices
of roughly USD 8,000 for 16 extra channels at 7 M depth and USD 1,500 for
upgrading 16 channels from 7 M to 14 M depth.  This module captures that
cost model so the economics experiment can regenerate the argument (and so
users can plug in their own prices).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import ConfigurationError
from repro.core.units import MEGA
from repro.ate.spec import AteSpec

#: Paper figure: 16 additional channels with 7 M memory cost about USD 8,000.
DEFAULT_CHANNEL_BLOCK_SIZE = 16
DEFAULT_CHANNEL_BLOCK_PRICE_USD = 8_000.0

#: Paper figure: upgrading 16 channels from 7 M to 14 M costs about USD 1,500.
DEFAULT_MEMORY_UPGRADE_PRICE_USD = 1_500.0
DEFAULT_MEMORY_UPGRADE_FROM = 7 * MEGA
DEFAULT_MEMORY_UPGRADE_TO = 14 * MEGA


@dataclass(frozen=True)
class AtePricing:
    """Linear pricing model for ATE channel and memory upgrades.

    Attributes
    ----------
    channel_block_size:
        Number of channels bought as one block.
    channel_block_price_usd:
        Price of one channel block (channels come with the baseline memory
        depth).
    memory_upgrade_price_usd:
        Price of doubling the memory of one channel block from
        ``memory_upgrade_from`` to ``memory_upgrade_to`` vectors.
    """

    channel_block_size: int = DEFAULT_CHANNEL_BLOCK_SIZE
    channel_block_price_usd: float = DEFAULT_CHANNEL_BLOCK_PRICE_USD
    memory_upgrade_price_usd: float = DEFAULT_MEMORY_UPGRADE_PRICE_USD
    memory_upgrade_from: int = DEFAULT_MEMORY_UPGRADE_FROM
    memory_upgrade_to: int = DEFAULT_MEMORY_UPGRADE_TO

    def __post_init__(self) -> None:
        if self.channel_block_size <= 0:
            raise ConfigurationError("channel block size must be positive")
        if self.channel_block_price_usd < 0 or self.memory_upgrade_price_usd < 0:
            raise ConfigurationError("prices must be non-negative")
        if self.memory_upgrade_to <= self.memory_upgrade_from:
            raise ConfigurationError(
                "memory upgrade target depth must exceed the starting depth"
            )

    # ------------------------------------------------------------------
    # Cost of individual upgrades
    # ------------------------------------------------------------------
    def price_per_channel(self) -> float:
        """Price of a single additional ATE channel (pro-rated)."""
        return self.channel_block_price_usd / self.channel_block_size

    def price_per_vector_per_channel(self) -> float:
        """Price of one additional vector of memory depth on one channel."""
        depth_gain = self.memory_upgrade_to - self.memory_upgrade_from
        return self.memory_upgrade_price_usd / (self.channel_block_size * depth_gain)

    def channel_upgrade_cost(self, base: AteSpec, extra_channels: int) -> float:
        """Cost in USD of adding ``extra_channels`` channels to ``base``."""
        if extra_channels < 0:
            raise ConfigurationError("extra channel count must be non-negative")
        return extra_channels * self.price_per_channel()

    def memory_upgrade_cost(self, base: AteSpec, new_depth: int) -> float:
        """Cost in USD of deepening ``base``'s memory to ``new_depth`` vectors."""
        if new_depth < base.depth:
            raise ConfigurationError("new depth must not be smaller than the current depth")
        return (new_depth - base.depth) * base.channels * self.price_per_vector_per_channel()

    def capital_cost_usd(self, channels: int, depth: int) -> float:
        """Linear capital valuation of ``channels`` channels at ``depth`` vectors.

        Values an ATE resource bundle at the model's street prices: each
        channel at the pro-rated block price plus its ``depth`` vectors of
        memory at the per-vector upgrade price.  This is the numerator of
        cost-based objectives (``cost_per_good_die``): pricing the channels
        a multi-site configuration actually employs makes giving up a site
        a genuine capital-vs-throughput trade-off.
        """
        if channels < 0:
            raise ConfigurationError("channel count must be non-negative")
        if depth < 0:
            raise ConfigurationError("memory depth must be non-negative")
        return channels * (
            self.price_per_channel() + depth * self.price_per_vector_per_channel()
        )

    # ------------------------------------------------------------------
    # Equal-budget upgrades (the comparison made in Section 7)
    # ------------------------------------------------------------------
    def channels_for_budget(self, budget_usd: float) -> int:
        """How many extra channels ``budget_usd`` buys (rounded down)."""
        if budget_usd < 0:
            raise ConfigurationError("budget must be non-negative")
        return int(budget_usd / self.price_per_channel())

    def depth_increase_for_budget(self, base: AteSpec, budget_usd: float) -> int:
        """How many extra vectors per channel ``budget_usd`` buys on ``base``."""
        if budget_usd < 0:
            raise ConfigurationError("budget must be non-negative")
        per_vector_cost = self.price_per_vector_per_channel() * base.channels
        return int(budget_usd / per_vector_cost)
