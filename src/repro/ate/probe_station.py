"""Probe-station / test-cell timing model.

Besides the ATE itself, the multi-site throughput model needs two timing
parameters of the wafer-probe test cell:

* the **index time** ``t_i``: the time the prober needs to step to the next
  set of dies and establish contact (the paper uses 0.5 s);
* the **contact-test time** ``t_c``: the fixed time of the contact test that
  verifies all probed terminals are properly connected (the paper uses
  10 ms).

Both are bundled in :class:`ProbeStation` together with the per-terminal
contact yield ``p_c``, which drives the contact-pass probability and the
re-test model of Section 4.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.exceptions import ConfigurationError
from repro.core.fingerprint import pickle_state


@dataclass(frozen=True)
class ProbeStation:
    """Wafer-probe station parameters.

    Attributes
    ----------
    index_time_s:
        Prober index time ``t_i`` in seconds.
    contact_test_time_s:
        Contact-test time ``t_c`` in seconds.
    contact_yield:
        Probability ``p_c`` that a single probed terminal makes good contact.
    name:
        Optional label for reports.
    """

    index_time_s: float = 0.5
    contact_test_time_s: float = 0.010
    contact_yield: float = 1.0
    name: str = "prober"

    def __post_init__(self) -> None:
        if self.index_time_s < 0:
            raise ConfigurationError(
                f"index time must be non-negative, got {self.index_time_s}"
            )
        if self.contact_test_time_s < 0:
            raise ConfigurationError(
                f"contact-test time must be non-negative, got {self.contact_test_time_s}"
            )
        if not 0.0 <= self.contact_yield <= 1.0:
            raise ConfigurationError(
                f"contact yield must be within [0, 1], got {self.contact_yield}"
            )

    def __hash__(self) -> int:
        # Structural hash cached on first use; see repro.core.fingerprint.
        fingerprint = self.__dict__.get("_fingerprint")
        if fingerprint is None:
            fingerprint = hash(
                (self.index_time_s, self.contact_test_time_s, self.contact_yield, self.name)
            )
            object.__setattr__(self, "_fingerprint", fingerprint)
        return fingerprint

    __getstate__ = pickle_state

    def with_contact_yield(self, contact_yield: float) -> "ProbeStation":
        """Return a copy with a different per-terminal contact yield."""
        return replace(self, contact_yield=contact_yield)

    def with_index_time(self, index_time_s: float) -> "ProbeStation":
        """Return a copy with a different index time."""
        return replace(self, index_time_s=index_time_s)

    def site_contact_yield(self, terminals: int) -> float:
        """Probability that all ``terminals`` probed pins of one site contact well."""
        if terminals < 0:
            raise ConfigurationError(f"terminal count must be non-negative, got {terminals}")
        return self.contact_yield ** terminals

    def describe(self) -> str:
        """One-line summary used by reports and the CLI."""
        return (
            f"{self.name}: index {self.index_time_s * 1e3:g} ms, "
            f"contact test {self.contact_test_time_s * 1e3:g} ms, "
            f"contact yield {self.contact_yield:g}"
        )


def reference_probe_station(contact_yield: float = 1.0) -> ProbeStation:
    """The paper's reference probe station: 0.5 s index time, 10 ms contact test."""
    return ProbeStation(
        index_time_s=0.5,
        contact_test_time_s=0.010,
        contact_yield=contact_yield,
        name="prober-ref",
    )
