"""Wrapper-design result types and the scan test-time formula.

A module wrapper of width ``w`` organises the module's internal scan chains
and its wrapper input/output cells into ``w`` *wrapper chains*.  During test,
every pattern is shifted in through the wrapper chains (stimulus for the
functional inputs plus the scan-cell contents) while the previous pattern's
response is shifted out.  The per-module test time in clock cycles is the
standard formula used by the paper (via references [11], [12], [14]):

``t(w) = (1 + max(si, so)) * p + min(si, so)``

where ``si`` is the length of the longest scan-in path over the wrapper
chains, ``so`` the longest scan-out path, and ``p`` the pattern count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import ConfigurationError
from repro.soc.module import Module


@dataclass(frozen=True)
class WrapperChain:
    """A single wrapper chain of a module wrapper.

    Attributes
    ----------
    index:
        Position of the chain within the wrapper (0-based).
    scan_chain_indices:
        Indices (into ``module.scan_chains``) of the internal scan chains
        threaded onto this wrapper chain.
    scan_flipflops:
        Total internal scan flip-flops on this chain.
    input_cells:
        Wrapper input cells placed on this chain.
    output_cells:
        Wrapper output cells placed on this chain.
    """

    index: int
    scan_chain_indices: tuple[int, ...]
    scan_flipflops: int
    input_cells: int
    output_cells: int

    @property
    def scan_in_length(self) -> int:
        """Bits shifted in through this chain per pattern."""
        return self.scan_flipflops + self.input_cells

    @property
    def scan_out_length(self) -> int:
        """Bits shifted out through this chain per pattern."""
        return self.scan_flipflops + self.output_cells

    @property
    def is_empty(self) -> bool:
        """True when the chain carries no scan cells at all."""
        return self.scan_in_length == 0 and self.scan_out_length == 0


@dataclass(frozen=True)
class WrapperDesign:
    """A complete wrapper design for one module at one width.

    Attributes
    ----------
    module:
        The wrapped module.
    width:
        Number of TAM wires (wrapper chains) the wrapper was designed for.
    chains:
        The wrapper chains.  ``len(chains) <= width``; chains that would be
        empty are omitted (the physical wrapper simply does not use the
        corresponding TAM wires during shift).
    """

    module: Module
    width: int
    chains: tuple[WrapperChain, ...]

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ConfigurationError(f"wrapper width must be positive, got {self.width}")
        if len(self.chains) > self.width:
            raise ConfigurationError(
                f"wrapper for {self.module.name!r} has {len(self.chains)} chains "
                f"but width {self.width}"
            )

    @property
    def used_width(self) -> int:
        """Number of wrapper chains actually carrying scan cells."""
        return sum(1 for chain in self.chains if not chain.is_empty)

    @property
    def max_scan_in(self) -> int:
        """Longest scan-in path over all wrapper chains (``si``)."""
        return max((chain.scan_in_length for chain in self.chains), default=0)

    @property
    def max_scan_out(self) -> int:
        """Longest scan-out path over all wrapper chains (``so``)."""
        return max((chain.scan_out_length for chain in self.chains), default=0)

    @property
    def test_time_cycles(self) -> int:
        """Module test time in test-clock cycles at this wrapper width."""
        return scan_test_time(
            self.max_scan_in, self.max_scan_out, self.module.patterns
        )

    def describe(self) -> str:
        """One-line summary used in reports."""
        return (
            f"{self.module.name}: width {self.width} (used {self.used_width}), "
            f"si={self.max_scan_in}, so={self.max_scan_out}, "
            f"t={self.test_time_cycles} cycles"
        )


def scan_test_time(scan_in: int, scan_out: int, patterns: int) -> int:
    """Scan test time in cycles for the given maximum scan path lengths.

    ``t = (1 + max(si, so)) * p + min(si, so)``: each of the ``p`` patterns
    needs ``max(si, so)`` shift cycles (scan-in of the next pattern overlaps
    scan-out of the previous response) plus one capture cycle, and the final
    response still needs ``min(si, so)`` extra cycles to be shifted out.

    >>> scan_test_time(10, 6, 3)
    39
    """
    if patterns <= 0:
        raise ConfigurationError(f"pattern count must be positive, got {patterns}")
    if scan_in < 0 or scan_out < 0:
        raise ConfigurationError("scan path lengths must be non-negative")
    return (1 + max(scan_in, scan_out)) * patterns + min(scan_in, scan_out)
