"""The COMBINE wrapper-design algorithm (Marinissen, Goel & Lousberg, ITC'00).

Given a module and a wrapper width ``w``, COMBINE builds the wrapper chains
in three steps:

1. Distribute the internal scan chains over ``min(w, #scan chains)`` wrapper
   chains so the longest chain is as short as possible.  Two heuristics are
   tried (LPT and BFD, see :mod:`repro.wrapper.partition`) and the better
   result is kept -- this "combination" of heuristics gives the algorithm
   its name.
2. Distribute the wrapper *input* cells (functional inputs + bidirectionals)
   over all ``w`` wrapper chains so the longest scan-in path is minimal.
3. Distribute the wrapper *output* cells likewise for the scan-out paths.

The resulting :class:`~repro.wrapper.design.WrapperDesign` determines the
module test time at width ``w``.  The helper :func:`min_width_for_depth`
finds the smallest width whose test time fits within an ATE vector-memory
depth -- the quantity Step 1 of the paper's algorithm needs for every
module.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.exceptions import ConfigurationError, InfeasibleDesignError
from repro.soc.module import Module
from repro.wrapper.design import WrapperChain, WrapperDesign, scan_test_time
from repro.wrapper.partition import best_partition, spread_cells, water_level


def design_wrapper(module: Module, width: int) -> WrapperDesign:
    """Design a wrapper of ``width`` TAM wires around ``module`` with COMBINE.

    Widths larger than the module can use are allowed; the extra wrapper
    chains simply stay empty (and are omitted from the result), so the test
    time is monotonically non-increasing in ``width``.
    """
    if width <= 0:
        raise ConfigurationError(
            f"wrapper width must be positive, got {width} for module {module.name!r}"
        )

    scan_lengths = list(module.scan_lengths)
    num_scan_bins = min(width, len(scan_lengths)) if scan_lengths else 0

    # Step 1: scan chains onto wrapper chains (best of LPT / BFD).
    if num_scan_bins > 0:
        partition = best_partition(scan_lengths, num_scan_bins)
        scan_assignment = list(partition.bins)
        scan_loads = list(partition.loads)
    else:
        scan_assignment = []
        scan_loads = []

    # Pad with wrapper chains that carry no internal scan chain; they can
    # still receive functional I/O cells.
    while len(scan_loads) < width:
        scan_assignment.append(())
        scan_loads.append(0)

    # Step 2: input cells to minimise the maximum scan-in length.
    input_cells = spread_cells(scan_loads, module.wrapper_input_cells)
    # Step 3: output cells to minimise the maximum scan-out length.
    output_cells = spread_cells(scan_loads, module.wrapper_output_cells)

    chains = []
    for index in range(width):
        chain = WrapperChain(
            index=index,
            scan_chain_indices=tuple(scan_assignment[index]),
            scan_flipflops=scan_loads[index],
            input_cells=input_cells[index],
            output_cells=output_cells[index],
        )
        if not chain.is_empty:
            chains.append(chain)
    return WrapperDesign(module=module, width=width, chains=tuple(chains))


@lru_cache(maxsize=200_000)
def module_test_time(module: Module, width: int) -> int:
    """Module test time (cycles) with a COMBINE wrapper of ``width`` wires."""
    return _fast_test_time(module, width)


#: Backwards-compatible alias (the bench runner clears this cache by name).
_cached_test_time = module_test_time


def _fast_test_time(module: Module, width: int) -> int:
    """Test time of :func:`design_wrapper` without building the chain objects.

    The test time only depends on the maximum scan-in and scan-out lengths.
    After the scan-chain partition, water-filling ``cells`` wrapper cells
    over the chain loads gives a maximum final load of
    ``max(max(loads), level)`` where ``level`` is the water level
    (:func:`~repro.wrapper.partition.water_level`): chains above the level
    keep their load, and at least one raised chain always sits exactly at
    the level -- the surplus removed after the last full level is strictly
    smaller than the number of raised chains, or the level would not be
    minimal.  So neither the per-chain cell counts nor the
    :class:`~repro.wrapper.design.WrapperChain` objects are needed here.
    Equality with the full design is pinned by the kernel equivalence test
    suite.
    """
    if width <= 0:
        raise ConfigurationError(
            f"wrapper width must be positive, got {width} for module {module.name!r}"
        )
    scan_lengths = module.scan_lengths
    if scan_lengths:
        loads = sorted(best_partition(scan_lengths, min(width, len(scan_lengths))).loads)
        if len(loads) < width:
            loads = [0] * (width - len(loads)) + loads
    else:
        loads = [0] * width
    longest = loads[-1]
    input_cells = module.wrapper_input_cells
    output_cells = module.wrapper_output_cells
    scan_in = max(longest, water_level(loads, input_cells)) if input_cells else longest
    scan_out = max(longest, water_level(loads, output_cells)) if output_cells else longest
    return scan_test_time(scan_in, scan_out, module.patterns)


def min_width_for_depth(module: Module, depth: int, max_width: int) -> int:
    """Smallest wrapper width whose test time fits in ``depth`` cycles.

    Parameters
    ----------
    module:
        The module to wrap.
    depth:
        ATE vector-memory depth per channel, in vectors (= cycles).
    max_width:
        Upper bound on the width to consider (typically half the ATE channel
        count, since a TAM wire consumes one input and one output channel).

    Raises
    ------
    InfeasibleDesignError
        If even ``max_width`` wires cannot bring the test time below
        ``depth``.  This mirrors the paper's Step 1, which exits when a
        module cannot be tested on the target ATE.
    """
    if depth <= 0:
        raise ConfigurationError(f"memory depth must be positive, got {depth}")
    if max_width <= 0:
        raise ConfigurationError(f"max width must be positive, got {max_width}")

    effective_max = min(max_width, module.max_useful_width)
    if module_test_time(module, effective_max) > depth:
        raise InfeasibleDesignError(
            f"module {module.name!r} needs more than {max_width} TAM wires to fit "
            f"a vector-memory depth of {depth} vectors",
            module_name=module.name,
        )

    # Binary search on the (in practice non-increasing) test-time curve.
    low, high = 1, effective_max
    while low < high:
        mid = (low + high) // 2
        if module_test_time(module, mid) <= depth:
            high = mid
        else:
            low = mid + 1
    # The COMBINE heuristics are not formally guaranteed to be monotone in
    # the width, so guard against the rare anomaly where the binary search
    # lands on a width that does not actually fit.
    while low < effective_max and module_test_time(module, low) > depth:
        low += 1
    return low
