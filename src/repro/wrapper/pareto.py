"""Pareto-optimal wrapper widths for a module.

The test time of a module is a staircase function of its wrapper width:
several consecutive widths often yield the same time because the longest
internal scan chain dominates.  Only the *Pareto-optimal* widths -- the
smallest width achieving each distinct test time -- matter for TAM design:
giving a module a non-Pareto width wastes ATE channels without reducing its
test time.  Both the rectangle bin-packing baseline (Iyengar et al. [7]) and
the theoretical lower bound on ATE channels work on these Pareto points.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.core.exceptions import ConfigurationError
from repro.soc.module import Module
from repro.wrapper.combine import module_test_time


@dataclass(frozen=True)
class ParetoPoint:
    """A Pareto-optimal (width, test time) pair for a module."""

    width: int
    test_time_cycles: int

    @property
    def area(self) -> int:
        """ATE occupation of this point in channel*cycle units (per TAM wire)."""
        return self.width * self.test_time_cycles


def pareto_points(module: Module, max_width: int) -> tuple[ParetoPoint, ...]:
    """Return the Pareto-optimal wrapper widths of ``module`` up to ``max_width``.

    The result is sorted by increasing width (and therefore non-increasing
    test time).  Width 1 is always included; widths that do not strictly
    improve on a smaller width are dropped.
    """
    if max_width <= 0:
        raise ConfigurationError(f"max width must be positive, got {max_width}")
    return _cached_pareto(module, min(max_width, module.max_useful_width))


@lru_cache(maxsize=50_000)
def _cached_pareto(module: Module, max_width: int) -> tuple[ParetoPoint, ...]:
    points: list[ParetoPoint] = []
    best_time: int | None = None
    for width in range(1, max_width + 1):
        time = module_test_time(module, width)
        if best_time is None or time < best_time:
            points.append(ParetoPoint(width=width, test_time_cycles=time))
            best_time = time
    return tuple(points)


def min_test_time(module: Module, max_width: int) -> int:
    """Smallest achievable test time of ``module`` with at most ``max_width`` wires."""
    return pareto_points(module, max_width)[-1].test_time_cycles


def min_area(module: Module, max_width: int) -> int:
    """Smallest ATE occupation (channel*cycles) over all Pareto widths.

    This is the per-module contribution to the theoretical lower bound on
    the total TAM width: no schedule can occupy fewer channel*cycle units
    for this module than its cheapest Pareto point.
    """
    return min(point.area for point in pareto_points(module, max_width))


def best_width_for_depth(module: Module, depth: int, max_width: int) -> ParetoPoint | None:
    """Cheapest Pareto point whose test time fits within ``depth`` cycles.

    Returns ``None`` when no width up to ``max_width`` fits, mirroring the
    infeasibility exit of the paper's Step 1 (callers translate this into
    :class:`~repro.core.exceptions.InfeasibleDesignError` with more context).
    """
    if depth <= 0:
        raise ConfigurationError(f"memory depth must be positive, got {depth}")
    for point in pareto_points(module, max_width):
        if point.test_time_cycles <= depth:
            return point
    return None
