"""Module wrapper design: partitioning heuristics, COMBINE, Pareto analysis."""

from repro.wrapper.partition import (
    Partition,
    lpt_partition,
    bfd_partition,
    best_partition,
    spread_cells,
)
from repro.wrapper.design import WrapperChain, WrapperDesign, scan_test_time
from repro.wrapper.combine import (
    design_wrapper,
    module_test_time,
    min_width_for_depth,
)
from repro.wrapper.pareto import (
    ParetoPoint,
    pareto_points,
    min_test_time,
    min_area,
    best_width_for_depth,
)

__all__ = [
    "Partition",
    "lpt_partition",
    "bfd_partition",
    "best_partition",
    "spread_cells",
    "WrapperChain",
    "WrapperDesign",
    "scan_test_time",
    "design_wrapper",
    "module_test_time",
    "min_width_for_depth",
    "ParetoPoint",
    "pareto_points",
    "min_test_time",
    "min_area",
    "best_width_for_depth",
]
