"""Multiprocessor-scheduling style partitioning heuristics.

Wrapper design boils down to partitioning the internal scan chains of a
module over ``w`` wrapper chains so that the longest wrapper chain is as
short as possible -- the classic minimum-makespan multiprocessor scheduling
problem, which is NP-hard.  Following the COMBINE algorithm of Marinissen,
Goel & Lousberg (ITC 2000), this module provides the two standard
polynomial-time heuristics the paper builds on:

* **LPT** (Largest Processing Time first): sort items in decreasing size and
  always place the next item on the currently least-loaded bin.
* **BFD** (Best Fit Decreasing): sort items in decreasing size and place the
  next item on the fullest bin it still "fits" on given the current maximum
  load; if it fits nowhere, fall back to the least-loaded bin.

Both return an explicit assignment of item indices to bins so callers can
reconstruct which scan chains ended up on which wrapper chain.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from repro.core.exceptions import ConfigurationError


@dataclass(frozen=True)
class Partition:
    """Result of partitioning items over bins.

    Attributes
    ----------
    bins:
        ``bins[b]`` is the tuple of item indices assigned to bin ``b``.
    loads:
        ``loads[b]`` is the total size assigned to bin ``b``.
    """

    bins: tuple[tuple[int, ...], ...]
    loads: tuple[int, ...]

    @property
    def makespan(self) -> int:
        """Largest bin load (0 when there are no items)."""
        return max(self.loads) if self.loads else 0

    @property
    def num_bins(self) -> int:
        """Number of bins in the partition."""
        return len(self.bins)

    @property
    def num_items(self) -> int:
        """Number of items placed."""
        return sum(len(bin_items) for bin_items in self.bins)


def _check_arguments(sizes: Sequence[int], num_bins: int) -> None:
    if num_bins <= 0:
        raise ConfigurationError(f"number of bins must be positive, got {num_bins}")
    for size in sizes:
        if size < 0:
            raise ConfigurationError(f"item sizes must be non-negative, got {size}")


def _decreasing_order(sizes: Sequence[int]) -> list[int]:
    """Item indices sorted by decreasing size (stable for equal sizes)."""
    return sorted(range(len(sizes)), key=lambda index: (-sizes[index], index))


def lpt_partition(sizes: Sequence[int], num_bins: int) -> Partition:
    """Partition ``sizes`` over ``num_bins`` bins with the LPT heuristic.

    >>> lpt_partition([5, 4, 3, 2], 2).makespan
    7
    """
    _check_arguments(sizes, num_bins)
    assignments: list[list[int]] = [[] for _ in range(num_bins)]
    loads = [0] * num_bins
    # A heap of (load, bin) tuples picks the same bin as
    # ``min(range(num_bins), key=lambda b: (loads[b], b))`` -- the
    # least-loaded bin, ties towards the lower index -- in O(log bins).
    heap = [(0, b) for b in range(num_bins)]
    for index in _decreasing_order(sizes):
        load, target = heapq.heappop(heap)
        assignments[target].append(index)
        load += sizes[index]
        loads[target] = load
        heapq.heappush(heap, (load, target))
    return Partition(
        bins=tuple(tuple(bin_items) for bin_items in assignments),
        loads=tuple(loads),
    )


def bfd_partition(sizes: Sequence[int], num_bins: int) -> Partition:
    """Partition ``sizes`` over ``num_bins`` bins with the BFD heuristic.

    The "capacity" used by best-fit is the current maximum load: an item
    fits on a bin if adding it does not increase the makespan.  Among
    fitting bins the fullest one is chosen (best fit); when no bin fits the
    least-loaded bin is used, which then defines the new makespan.
    """
    _check_arguments(sizes, num_bins)
    assignments: list[list[int]] = [[] for _ in range(num_bins)]
    loads = [0] * num_bins
    current_max = 0
    for index in _decreasing_order(sizes):
        size = sizes[index]
        # One fused scan finds both the best-fit bin (fullest bin the item
        # fits on, ties towards the lower index) and the least-loaded
        # fallback (ties towards the lower index as well).
        target = -1
        target_load = -1
        fallback = 0
        fallback_load = loads[0]
        for b in range(num_bins):
            load = loads[b]
            if load + size <= current_max and load > target_load:
                target = b
                target_load = load
            if load < fallback_load:
                fallback = b
                fallback_load = load
        if target < 0:
            target = fallback
        assignments[target].append(index)
        loads[target] += size
        if loads[target] > current_max:
            current_max = loads[target]
    return Partition(
        bins=tuple(tuple(bin_items) for bin_items in assignments),
        loads=tuple(loads),
    )


def best_partition(sizes: Sequence[int], num_bins: int) -> Partition:
    """Return the better of the LPT and BFD partitions (smaller makespan).

    This is the scan-chain distribution step of the COMBINE algorithm.
    Ties are resolved in favour of LPT -- which also licenses the shortcut
    below: when the LPT makespan already meets the trivial lower bound
    (the largest item, or the average bin load rounded up), no partition
    can beat it and BFD is skipped entirely.
    """
    lpt = lpt_partition(sizes, num_bins)
    if sizes:
        total = sum(sizes)
        lower_bound = max(max(sizes), -(-total // num_bins))
        if lpt.makespan == lower_bound:
            return lpt
    bfd = bfd_partition(sizes, num_bins)
    return bfd if bfd.makespan < lpt.makespan else lpt


def water_level(sorted_loads: Sequence[int], cells: int) -> int:
    """Smallest integer level ``L`` with ``sum(max(0, L - load)) >= cells``.

    ``sorted_loads`` must be sorted ascending and non-empty; ``cells`` must
    be positive.  With the loads sorted, the capacity restricted to the
    ``k`` smallest loads is the closed form ``k * L - prefix_k``, so the
    level is found directly from prefix sums instead of by binary search.
    """
    num = len(sorted_loads)
    prefix = 0
    for k in range(1, num + 1):
        prefix += sorted_loads[k - 1]
        # Smallest L with k * L - prefix >= cells, valid while at most the
        # k smallest loads sit below L (i.e. L does not pass the next load).
        candidate = -(-(cells + prefix) // k)
        if k == num or candidate <= sorted_loads[k]:
            return candidate
    return sorted_loads[-1] + cells  # pragma: no cover - loop always returns


def spread_cells(base_loads: Sequence[int], cells: int) -> tuple[int, ...]:
    """Distribute ``cells`` unit-size wrapper cells over chains optimally.

    The cells are spread "water-filling" style: the final loads are as equal
    as possible, which minimises the maximum load.  This is exactly what a
    greedy cell-by-cell assignment to the least-loaded chain produces, but
    computed in ``O(chains log chains)`` independent of the cell count.

    Returns the per-chain number of cells added (not the new loads).

    >>> spread_cells([5, 1, 1], 4)
    (0, 2, 2)
    """
    if cells < 0:
        raise ConfigurationError(f"cell count must be non-negative, got {cells}")
    if not base_loads:
        raise ConfigurationError("cannot spread cells over zero chains")
    loads = list(base_loads)
    num = len(loads)
    if cells == 0:
        return tuple([0] * num)
    if num == 1:
        return (cells,)

    # Find the water level, then distribute the slack of the last
    # partially-filled level over the lowest-indexed chains for determinism.
    level = water_level(sorted(loads), cells)
    added = [max(0, level - load) for load in loads]
    surplus = sum(added) - cells
    if surplus > 0:
        # Remove the surplus from chains that were raised exactly to the
        # level, preferring higher indices so low indices keep priority
        # (mirrors greedy tie-breaking on the lowest index).
        for index in range(num - 1, -1, -1):
            if surplus == 0:
                break
            if added[index] > 0 and loads[index] + added[index] == level:
                take = min(surplus, 1)
                added[index] -= take
                surplus -= take
    return tuple(added)
