"""Wire forms of the campaign service: JSON-safe grid and scenario specs.

The service never ships :class:`~repro.api.scenario.Scenario` objects over
the wire -- it ships *descriptions*, and both ends expand them locally:

* :class:`GridSpec` is the JSON form of a :class:`~repro.api.grid.SweepGrid`
  (catalog SOC names x channels x depths x broadcast x site limits x
  solvers x objectives, plus a shard count).  Because grid iteration order
  is deterministic, a server and a worker that build the same spec see the
  same scenario at the same index -- which is what makes a leased shard
  ``(index, count)`` an unambiguous work assignment and keeps the
  scenarios' content digests identical on both sides.
* :func:`scenario_from_wire` builds a single scenario from the same kind
  of parameter payload (the ``repro design`` axes), for the one-shot
  ``POST /scenarios`` endpoint.

All SOCs are referenced by catalog name (``d695``,
``synthetic:<seed>:<modules>``, ...): names resolve identically in every
process, while ``.soc`` file paths would not exist on remote workers.
Depths travel as raw vector counts (integers), never the CLI's
mega-vector floats, so the wire form is exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.api.grid import Grid, SweepGrid
from repro.api.scenario import Scenario
from repro.api.testcell import reference_test_cell
from repro.core.exceptions import ConfigurationError
from repro.objectives.registry import DEFAULT_OBJECTIVE
from repro.optimize.config import OptimizationConfig
from repro.solvers.registry import DEFAULT_SOLVER

#: Version stamp of the wire protocol; servers reject payloads from a
#: different major protocol so mixed deployments fail loudly, not subtly.
PROTOCOL_VERSION = 1

_BROADCAST_AXES = ("off", "on", "both")


def _name_axis(value: Any, label: str) -> tuple[str, ...]:
    """Validate a wire axis of non-empty strings (SOCs, solvers, objectives)."""
    if not isinstance(value, (list, tuple)) or not value:
        raise ConfigurationError(f"grid spec {label!r} must be a non-empty list of names")
    names = []
    for item in value:
        if not isinstance(item, str) or not item:
            raise ConfigurationError(
                f"grid spec {label!r} entries must be non-empty strings, got {item!r}"
            )
        names.append(item)
    return tuple(names)


def _int_axis(value: Any, label: str) -> tuple[int, ...] | None:
    """Validate an optional wire axis of positive integers (channels, depths)."""
    if value is None:
        return None
    if not isinstance(value, (list, tuple)) or not value:
        raise ConfigurationError(f"grid spec {label!r} must be null or a non-empty list")
    numbers = []
    for item in value:
        if isinstance(item, bool) or not isinstance(item, int) or item <= 0:
            raise ConfigurationError(
                f"grid spec {label!r} entries must be positive integers, got {item!r}"
            )
        numbers.append(item)
    return tuple(numbers)


@dataclass(frozen=True)
class GridSpec:
    """JSON-safe description of a sharded sweep grid.

    Attributes mirror the axes of :class:`~repro.api.grid.SweepGrid` (an
    omitted axis keeps the reference test cell's value), plus ``shards``:
    the number of disjoint strided slices the campaign is split into for
    leasing.  ``frequency_mhz`` parameterises the reference test cell;
    everything else about the cell (probe station, pricing) is pinned to
    the paper's reference values, exactly as ``repro sweep`` pins them.
    """

    socs: tuple[str, ...]
    channels: tuple[int, ...] | None = None
    depths: tuple[int, ...] | None = None
    frequency_mhz: float = 5.0
    broadcast: str = "off"
    max_sites: tuple[int, ...] | None = None
    solvers: tuple[str, ...] | None = None
    objectives: tuple[str, ...] | None = None
    shards: int = 1

    def __post_init__(self) -> None:
        if not self.socs:
            raise ConfigurationError("grid spec needs at least one SOC")
        if self.broadcast not in _BROADCAST_AXES:
            raise ConfigurationError(
                f"grid spec broadcast must be one of {_BROADCAST_AXES}, got {self.broadcast!r}"
            )
        if self.shards <= 0:
            raise ConfigurationError(f"grid spec shards must be positive, got {self.shards}")
        if self.frequency_mhz <= 0:
            raise ConfigurationError(
                f"grid spec frequency_mhz must be positive, got {self.frequency_mhz}"
            )

    # ------------------------------------------------------------------
    # Wire form
    # ------------------------------------------------------------------
    def to_wire(self) -> dict[str, Any]:
        """The JSON payload form (round-trips through :meth:`from_wire`)."""
        return {
            "protocol": PROTOCOL_VERSION,
            "socs": list(self.socs),
            "channels": list(self.channels) if self.channels is not None else None,
            "depths": list(self.depths) if self.depths is not None else None,
            "frequency_mhz": self.frequency_mhz,
            "broadcast": self.broadcast,
            "max_sites": list(self.max_sites) if self.max_sites is not None else None,
            "solvers": list(self.solvers) if self.solvers is not None else None,
            "objectives": list(self.objectives) if self.objectives is not None else None,
            "shards": self.shards,
        }

    @classmethod
    def from_wire(cls, payload: Any) -> "GridSpec":
        """Validate and decode a JSON payload into a spec.

        Raises
        ------
        ConfigurationError
            When the payload is not an object, speaks a different protocol
            version, or any axis is malformed.
        """
        if not isinstance(payload, Mapping):
            raise ConfigurationError("grid spec must be a JSON object")
        protocol = payload.get("protocol", PROTOCOL_VERSION)
        if protocol != PROTOCOL_VERSION:
            raise ConfigurationError(
                f"grid spec speaks protocol {protocol!r}; this side speaks {PROTOCOL_VERSION}"
            )
        unknown = set(payload) - {
            "protocol", "socs", "channels", "depths", "frequency_mhz",
            "broadcast", "max_sites", "solvers", "objectives", "shards",
        }
        if unknown:
            raise ConfigurationError(
                f"grid spec has unknown fields: {', '.join(sorted(unknown))}"
            )
        broadcast = payload.get("broadcast", "off")
        if not isinstance(broadcast, str):
            raise ConfigurationError(f"grid spec broadcast must be a string, got {broadcast!r}")
        shards = payload.get("shards", 1)
        if isinstance(shards, bool) or not isinstance(shards, int):
            raise ConfigurationError(f"grid spec shards must be an integer, got {shards!r}")
        frequency = payload.get("frequency_mhz", 5.0)
        if isinstance(frequency, bool) or not isinstance(frequency, (int, float)):
            raise ConfigurationError(
                f"grid spec frequency_mhz must be a number, got {frequency!r}"
            )

        def optional_names(key: str) -> tuple[str, ...] | None:
            value = payload.get(key)
            return None if value is None else _name_axis(value, key)

        return cls(
            socs=_name_axis(payload.get("socs"), "socs"),
            channels=_int_axis(payload.get("channels"), "channels"),
            depths=_int_axis(payload.get("depths"), "depths"),
            frequency_mhz=float(frequency),
            broadcast=broadcast,
            max_sites=_int_axis(payload.get("max_sites"), "max_sites"),
            solvers=optional_names("solvers"),
            objectives=optional_names("objectives"),
            shards=shards,
        )

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    def build_grid(self) -> SweepGrid:
        """Expand into the sweep grid both ends iterate identically."""
        broadcast = {"off": None, "on": True, "both": (False, True)}[self.broadcast]
        return SweepGrid(
            list(self.socs),
            reference_test_cell(frequency_mhz=self.frequency_mhz),
            channels=list(self.channels) if self.channels is not None else None,
            depths=list(self.depths) if self.depths is not None else None,
            broadcast=broadcast,
            max_sites=list(self.max_sites) if self.max_sites is not None else None,
            solvers=list(self.solvers) if self.solvers is not None else None,
            objectives=list(self.objectives) if self.objectives is not None else None,
        )

    def shard_grid(self, index: int) -> Grid:
        """The grid slice shard ``index`` owns (strided, disjoint, complete)."""
        return self.build_grid().shard(index, self.shards)

    def describe(self) -> str:
        """One-line summary used by progress output and logs."""
        return f"{self.build_grid().describe()} in {self.shards} shard(s)"


# ----------------------------------------------------------------------
# Single-scenario wire form
# ----------------------------------------------------------------------
def scenario_to_wire(
    soc: str,
    *,
    channels: int | None = None,
    depth: int | None = None,
    frequency_mhz: float = 5.0,
    broadcast: bool = False,
    max_sites: int | None = None,
    solver: str = DEFAULT_SOLVER,
    objective: str = DEFAULT_OBJECTIVE,
) -> dict[str, Any]:
    """Build the ``POST /scenarios`` payload for one catalog scenario."""
    return {
        "protocol": PROTOCOL_VERSION,
        "soc": soc,
        "channels": channels,
        "depth": depth,
        "frequency_mhz": frequency_mhz,
        "broadcast": broadcast,
        "max_sites": max_sites,
        "solver": solver,
        "objective": objective,
    }


def scenario_from_wire(payload: Any) -> Scenario:
    """Decode a ``POST /scenarios`` payload into a scenario.

    The payload axes mirror ``repro design``: omitted channels/depth keep
    the reference test cell's 512 x 7M operating point.

    Raises
    ------
    ConfigurationError
        When the payload is malformed.
    """
    if not isinstance(payload, Mapping):
        raise ConfigurationError("scenario spec must be a JSON object")
    soc = payload.get("soc")
    if not isinstance(soc, str) or not soc:
        raise ConfigurationError("scenario spec needs a catalog SOC name under 'soc'")
    frequency = payload.get("frequency_mhz", 5.0)
    if isinstance(frequency, bool) or not isinstance(frequency, (int, float)) or frequency <= 0:
        raise ConfigurationError(
            f"scenario spec frequency_mhz must be a positive number, got {frequency!r}"
        )
    cell = reference_test_cell(frequency_mhz=float(frequency))
    for key in ("channels", "depth"):
        value = payload.get(key)
        if value is None:
            continue
        if isinstance(value, bool) or not isinstance(value, int) or value <= 0:
            raise ConfigurationError(
                f"scenario spec {key!r} must be a positive integer, got {value!r}"
            )
        cell = cell.with_channels(value) if key == "channels" else cell.with_depth(value)
    max_sites = payload.get("max_sites")
    if max_sites is not None and (
        isinstance(max_sites, bool) or not isinstance(max_sites, int) or max_sites <= 0
    ):
        raise ConfigurationError(
            f"scenario spec max_sites must be null or a positive integer, got {max_sites!r}"
        )
    solver = payload.get("solver", DEFAULT_SOLVER)
    objective = payload.get("objective", DEFAULT_OBJECTIVE)
    if not isinstance(solver, str) or not isinstance(objective, str):
        raise ConfigurationError("scenario spec solver/objective must be names")
    return Scenario(
        soc=soc,
        test_cell=cell,
        config=OptimizationConfig(
            broadcast=bool(payload.get("broadcast", False)), max_sites=max_sites
        ),
        solver=solver,
        objective=objective,
    )


def sequence_of_keys(value: Any) -> tuple[str, ...]:
    """Validate a wire list of scenario digests (``POST /records/query``)."""
    if not isinstance(value, (list, tuple)):
        raise ConfigurationError("'keys' must be a list of scenario digests")
    keys = []
    for item in value:
        if not isinstance(item, str) or not item:
            raise ConfigurationError(f"scenario digests must be non-empty strings, got {item!r}")
        keys.append(item)
    return tuple(keys)
