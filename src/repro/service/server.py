"""The campaign server: shard leases and record ingest over HTTP/JSON.

:class:`CampaignServer` owns the coordination state of ``repro serve``:
submitted campaigns (a :class:`~repro.service.protocol.GridSpec` each,
split into ``shards`` strided slices), the lease table that hands those
slices to workers, and the result store every completed record lands in.
The HTTP layer underneath it is a plain ``http.server.ThreadingHTTPServer``
-- no third-party dependencies -- with one JSON endpoint per verb.

Lease lifecycle
---------------
Each campaign shard is in exactly one state: ``pending`` (available),
``leased`` (a worker owns it, with a TTL deadline) or ``done``.  Workers
``POST /lease`` to claim the oldest pending shard, ``POST
/leases/<id>/heartbeat`` after every scenario to push the deadline out,
and ``POST /leases/<id>/complete`` when the shard is exhausted.  A lease
whose deadline passes (worker crashed, network gone) is swept back to
``pending`` on the next state-touching request, so another worker picks
the shard up; because every record upload is deduplicated against the
store first, the retried shard recomputes only what the dead worker never
uploaded.  Deadlines run on a monotonic clock (injectable for tests), so
wall-clock jumps cannot expire or immortalise a lease.

Record ingest
-------------
Workers upload finished scenarios in the store's own record form
(:func:`repro.store.make_record`).  The server digest-verifies every
record (the embedded result must decode and match the claimed key) before
writing, and drops records whose key the store already holds -- the
counters distinguish ``records_stored`` from ``records_duplicate``, which
is what the distributed-equivalence test asserts on.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

from repro.api.engine import Engine, ScenarioResult
from repro.bench.runner import sweep_digest
from repro.core.exceptions import ConfigurationError, ReproError, StoreError
from repro.service.protocol import (
    PROTOCOL_VERSION,
    GridSpec,
    scenario_from_wire,
    sequence_of_keys,
)
from repro.store.factory import open_store
from repro.store.packed import PackedResultStore
from repro.store.result_store import ResultStore, decode_record, record_key

#: Default lease time-to-live: how long a worker may go between heartbeats
#: before its shard is handed to someone else.
DEFAULT_LEASE_TTL = 30.0


class _NotFound(ReproError):
    """Internal: a campaign or lease id that names nothing (HTTP 404)."""


@dataclass
class _Campaign:
    """One submitted campaign: its spec, expanded digests, and shard states."""

    id: str
    spec: GridSpec
    #: Scenario content digest per grid index, in grid iteration order;
    #: shard ``i`` owns ``digests[i::spec.shards]``.
    digests: tuple[str, ...]
    #: Per-shard state: ``pending`` | ``leased`` | ``done``.
    states: list[str]
    created_at: float


@dataclass
class _Lease:
    """A worker's claim on one campaign shard, with a monotonic deadline."""

    id: str
    campaign: str
    shard: int
    worker: str
    deadline: float


class CampaignServer:
    """Coordination core of the campaign service (transport-free).

    All public methods speak plain JSON-able dicts and raise
    :class:`~repro.core.exceptions.ReproError` subclasses on bad input, so
    the HTTP layer is a thin router and tests can drive the server
    in-process without sockets.

    Parameters
    ----------
    store:
        The result store completed records land in -- a store object or a
        directory path (either backend; see :func:`repro.store.open_store`).
    lease_ttl:
        Seconds a worker may go between heartbeats before its shard lease
        expires and the shard is re-offered.
    clock:
        Monotonic time source for lease deadlines (injectable for tests).
    """

    def __init__(
        self,
        store: "ResultStore | PackedResultStore | str | Path",
        *,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if lease_ttl <= 0:
            raise ConfigurationError(f"lease ttl must be positive, got {lease_ttl}")
        self.store = open_store(store)
        self.engine = Engine(store=self.store)
        self.lease_ttl = float(lease_ttl)
        self._clock = clock
        self._lock = threading.Lock()
        self._campaign_ids = itertools.count(1)
        self._lease_ids = itertools.count(1)
        self._campaigns: dict[str, _Campaign] = {}
        self._leases: dict[str, _Lease] = {}
        self.counters: dict[str, int] = {
            "leases_granted": 0,
            "leases_expired": 0,
            "leases_completed": 0,
            "records_stored": 0,
            "records_duplicate": 0,
            "presence_hits": 0,
            "scenarios_run": 0,
        }
        #: Optional ``log(message)`` sink for request/lifecycle lines.
        self.log: Callable[[str], None] | None = None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _say(self, message: str) -> None:
        if self.log is not None:
            self.log(message)

    def _expire_leases(self) -> None:
        """Sweep overdue leases back to ``pending`` (caller holds the lock)."""
        now = self._clock()
        for lease_id in [i for i, lease in self._leases.items() if lease.deadline <= now]:
            lease = self._leases.pop(lease_id)
            campaign = self._campaigns[lease.campaign]
            if campaign.states[lease.shard] == "leased":
                campaign.states[lease.shard] = "pending"
            self.counters["leases_expired"] += 1
            self._say(
                f"lease {lease.id} expired: {lease.campaign} shard {lease.shard} "
                f"(worker {lease.worker}) back to pending"
            )

    def _campaign(self, campaign_id: str) -> _Campaign:
        try:
            return self._campaigns[campaign_id]
        except KeyError:
            raise _NotFound(f"no campaign {campaign_id!r}") from None

    def _progress_locked(self, campaign: _Campaign) -> dict[str, Any]:
        states = {state: campaign.states.count(state) for state in ("pending", "leased", "done")}
        missing = len(self.store.missing_keys(campaign.digests))
        return {
            "campaign": campaign.id,
            "grid": campaign.spec.to_wire(),
            "created_at": campaign.created_at,
            "total": len(campaign.digests),
            "solved": len(campaign.digests) - missing,
            "shards": campaign.spec.shards,
            "shard_states": states,
            "done": states["done"] == campaign.spec.shards,
        }

    # ------------------------------------------------------------------
    # Campaigns
    # ------------------------------------------------------------------
    def submit_campaign(self, payload: Any) -> dict[str, Any]:
        """Register a sweep campaign: expand the grid, create its shards.

        The grid is expanded once at submit time -- this resolves every
        catalog SOC name and computes every scenario digest, so malformed
        specs fail the submitting client, never a worker.
        """
        if not isinstance(payload, Mapping):
            raise ConfigurationError("campaign submit payload must be a JSON object")
        spec = GridSpec.from_wire(payload.get("grid"))
        digests = tuple(scenario.digest for scenario in spec.build_grid())
        with self._lock:
            campaign = _Campaign(
                id=f"c{next(self._campaign_ids)}",
                spec=spec,
                digests=digests,
                states=["pending"] * spec.shards,
                created_at=time.time(),
            )
            self._campaigns[campaign.id] = campaign
            self._say(f"campaign {campaign.id} submitted: {spec.describe()}")
            return self._progress_locked(campaign)

    def list_campaigns(self) -> dict[str, Any]:
        with self._lock:
            self._expire_leases()
            return {
                "campaigns": [
                    self._progress_locked(campaign)
                    for campaign in self._campaigns.values()
                ]
            }

    def progress(self, campaign_id: str) -> dict[str, Any]:
        with self._lock:
            self._expire_leases()
            return self._progress_locked(self._campaign(campaign_id))

    # ------------------------------------------------------------------
    # Leases
    # ------------------------------------------------------------------
    def lease(self, payload: Any) -> dict[str, Any]:
        """Claim the oldest pending shard (optionally of one campaign).

        Returns a ``granted`` response carrying everything the worker
        needs to rebuild the shard locally (the grid spec plus the shard
        index), ``wait`` when every remaining shard is currently leased to
        someone else, or ``idle`` when there is no open work at all.
        """
        if not isinstance(payload, Mapping):
            raise ConfigurationError("lease payload must be a JSON object")
        worker = payload.get("worker", "anonymous")
        if not isinstance(worker, str) or not worker:
            raise ConfigurationError("lease 'worker' must be a non-empty string")
        wanted = payload.get("campaign")
        if wanted is not None and not isinstance(wanted, str):
            raise ConfigurationError("lease 'campaign' must be a campaign id string")
        with self._lock:
            self._expire_leases()
            if wanted is not None:
                candidates = [self._campaign(wanted)]
            else:
                candidates = list(self._campaigns.values())
            open_shards = False
            for campaign in candidates:
                for shard, state in enumerate(campaign.states):
                    if state == "leased":
                        open_shards = True
                    if state != "pending":
                        continue
                    lease = _Lease(
                        id=f"l{next(self._lease_ids)}",
                        campaign=campaign.id,
                        shard=shard,
                        worker=worker,
                        deadline=self._clock() + self.lease_ttl,
                    )
                    campaign.states[shard] = "leased"
                    self._leases[lease.id] = lease
                    self.counters["leases_granted"] += 1
                    self._say(
                        f"lease {lease.id}: {campaign.id} shard {shard}/"
                        f"{campaign.spec.shards} -> {worker}"
                    )
                    return {
                        "status": "granted",
                        "lease": lease.id,
                        "campaign": campaign.id,
                        "shard": shard,
                        "shards": campaign.spec.shards,
                        "ttl": self.lease_ttl,
                        "grid": campaign.spec.to_wire(),
                    }
            return {"status": "wait" if open_shards else "idle"}

    def heartbeat(self, lease_id: str) -> dict[str, Any]:
        """Extend a lease's deadline; ``gone`` when it already expired."""
        with self._lock:
            self._expire_leases()
            lease = self._leases.get(lease_id)
            if lease is None:
                return {"status": "gone"}
            lease.deadline = self._clock() + self.lease_ttl
            return {"status": "ok", "ttl": self.lease_ttl}

    def complete(self, lease_id: str) -> dict[str, Any]:
        """Mark a leased shard done; ``gone`` when the lease already expired.

        A ``gone`` answer is not an error for the worker: its results are
        already in the store (ingest is independent of the lease), the
        shard has merely been re-offered in the meantime and the retrying
        worker will find every uploaded scenario already present.
        """
        with self._lock:
            self._expire_leases()
            lease = self._leases.pop(lease_id, None)
            if lease is None:
                return {"status": "gone"}
            campaign = self._campaigns[lease.campaign]
            campaign.states[lease.shard] = "done"
            self.counters["leases_completed"] += 1
            self._say(f"lease {lease.id} complete: {lease.campaign} shard {lease.shard}")
            return {"status": "done"}

    # ------------------------------------------------------------------
    # Records
    # ------------------------------------------------------------------
    def query_missing(self, payload: Any) -> dict[str, Any]:
        """Which of these scenario digests does the store not hold yet?

        Workers call this once per shard before computing anything, so
        scenarios another worker (or an earlier run) already solved are
        never recomputed -- the ``presence_hits`` counter counts exactly
        those skips.
        """
        if not isinstance(payload, Mapping):
            raise ConfigurationError("records query payload must be a JSON object")
        keys = sequence_of_keys(payload.get("keys"))
        missing = self.store.missing_keys(keys)
        with self._lock:
            self.counters["presence_hits"] += len(set(keys)) - len(missing)
        return {"missing": list(missing), "present": len(set(keys)) - len(missing)}

    def ingest(self, payload: Any) -> dict[str, Any]:
        """Accept completed records, digest-verified and store-deduplicated.

        Accepts ``{"record": {...}}`` or ``{"records": [...]}``.  Every
        record must decode and its embedded key must be a well-formed
        digest -- a malformed record rejects the whole request with 400,
        nothing is partially written.
        """
        if not isinstance(payload, Mapping):
            raise ConfigurationError("records payload must be a JSON object")
        if "records" in payload:
            records = payload["records"]
            if not isinstance(records, list):
                raise ConfigurationError("'records' must be a list of record objects")
        elif "record" in payload:
            records = [payload["record"]]
        else:
            raise ConfigurationError("records payload needs 'record' or 'records'")
        validated: list[tuple[str, dict]] = []
        for record in records:
            if not isinstance(record, dict):
                raise StoreError("each record must be a JSON object")
            key = record_key(record)
            # Decode up front: a record the store could never read back is
            # rejected here, at the uploader, not discovered at analysis time.
            decode_record(record, expected_key=key)
            validated.append((key, record))
        stored = duplicate = 0
        with self._lock:
            fresh: list[dict] = []
            fresh_keys: set[str] = set()
            for key, record in validated:
                if key in fresh_keys or self.store.contains_key(key):
                    duplicate += 1
                    continue
                fresh.append(record)
                fresh_keys.add(key)
            if fresh:
                # One bulk write per request: a single index transaction on
                # the packed backend, whatever the batch size.
                self.store.put_records(fresh)
                stored = len(fresh)
            self.counters["records_stored"] += stored
            self.counters["records_duplicate"] += duplicate
        return {"stored": stored, "duplicates": duplicate}

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def _campaign_results(self, campaign: _Campaign) -> Iterator[ScenarioResult]:
        """Stream the campaign's solved scenarios from the store, grid order."""
        for scenario in campaign.spec.build_grid():
            result = self.store.get(scenario)
            if result is not None:
                yield ScenarioResult(scenario=scenario, result=result)

    def results(self, campaign_id: str) -> Iterator[dict[str, Any]]:
        """Yield the campaign's solved records (sweep-record form), grid order."""
        with self._lock:
            campaign = self._campaign(campaign_id)
        for outcome in self._campaign_results(campaign):
            yield outcome.to_record()

    def digest(self, campaign_id: str) -> dict[str, Any]:
        """The campaign's order-insensitive sweep digest over solved scenarios.

        ``complete`` says whether every grid scenario is solved; the digest
        of a complete campaign equals the ``sweep digest`` line a local
        ``repro sweep`` over the same grid prints, which is the
        distributed-equivalence check.
        """
        with self._lock:
            campaign = self._campaign(campaign_id)
        outcomes = list(self._campaign_results(campaign))
        return {
            "campaign": campaign.id,
            "total": len(campaign.digests),
            "solved": len(outcomes),
            "complete": len(outcomes) == len(campaign.digests),
            "digest": sweep_digest(outcomes),
        }

    # ------------------------------------------------------------------
    # One-shot scenarios
    # ------------------------------------------------------------------
    def run_scenario(self, payload: Any) -> dict[str, Any]:
        """Solve one scenario server-side (store-backed) and return its record."""
        if not isinstance(payload, Mapping):
            raise ConfigurationError("scenario payload must be a JSON object")
        scenario = scenario_from_wire(payload.get("scenario"))
        # Deliberately not under self._lock: a slow scenario must not block
        # lease heartbeats (both store backends are internally thread-safe).
        hit = self.store.contains_key(scenario.digest)
        outcome = self.engine.run(scenario)
        with self._lock:
            self.counters["scenarios_run"] += 1
        return {
            "digest": scenario.digest,
            "key": scenario.key,
            "source": "store" if hit else "computed",
            "record": outcome.to_record(),
        }

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        with self._lock:
            self._expire_leases()
            info = self.store.info()
            return {
                "status": "ok",
                "protocol": PROTOCOL_VERSION,
                "store": {
                    "root": str(self.store.root),
                    "backend": info.backend,
                    "records": info.size,
                    "segments": info.segments,
                },
                "campaigns": len(self._campaigns),
                "leases": len(self._leases),
                "counters": dict(self.counters),
            }


# ----------------------------------------------------------------------
# HTTP front end
# ----------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP verbs onto :class:`CampaignServer` methods."""

    server_version = "repro-campaign"
    #: Uploads above this are rejected before reading the body (HTTP 413).
    max_body_bytes = 64 * 1024 * 1024

    # -- plumbing ------------------------------------------------------
    @property
    def app(self) -> CampaignServer:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.app.log is not None:
            self.app.log(f"http: {format % args}")

    def _send_json(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > self.max_body_bytes:
            raise ConfigurationError(f"request body exceeds {self.max_body_bytes} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"request body is not valid JSON: {error}") from error

    def _dispatch(self, handler: Callable[[], None]) -> None:
        try:
            handler()
        except _NotFound as error:
            self._send_json(404, {"error": str(error)})
        except (ReproError, OSError) as error:
            self._send_json(400, {"error": str(error)})
        except BrokenPipeError:  # client went away mid-response
            pass
        except Exception as error:  # pragma: no cover - defensive 500
            self._send_json(500, {"error": f"{type(error).__name__}: {error}"})

    # -- verbs ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch(self._get)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch(self._post)

    def _get(self) -> None:
        parts = [part for part in self.path.split("?")[0].split("/") if part]
        if parts == ["health"]:
            self._send_json(200, self.app.health())
        elif parts == ["campaigns"]:
            self._send_json(200, self.app.list_campaigns())
        elif len(parts) == 2 and parts[0] == "campaigns":
            self._send_json(200, self.app.progress(parts[1]))
        elif len(parts) == 3 and parts[0] == "campaigns" and parts[2] == "digest":
            self._send_json(200, self.app.digest(parts[1]))
        elif len(parts) == 3 and parts[0] == "campaigns" and parts[2] == "results":
            self._stream_results(parts[1])
        else:
            raise _NotFound(f"no such endpoint: GET {self.path}")

    def _stream_results(self, campaign_id: str) -> None:
        # Validate the id before committing to a status line.
        results = self.app.results(campaign_id)
        self.app.progress(campaign_id)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()  # HTTP/1.0: the connection close delimits the stream
        for record in results:
            self.wfile.write(json.dumps(record, sort_keys=True).encode("utf-8") + b"\n")
            self.wfile.flush()

    def _read_ndjson_body(self) -> list[Any]:
        """Parse an NDJSON request body: one JSON value per non-blank line.

        The wire form of the batched record upload -- workers serialise
        each record once and concatenate, the server parses line by line,
        so neither side ever builds one giant JSON array in memory.  A
        malformed line rejects the request (400) with its line number.
        """
        length = int(self.headers.get("Content-Length") or 0)
        if length > self.max_body_bytes:
            raise ConfigurationError(f"request body exceeds {self.max_body_bytes} bytes")
        raw = self.rfile.read(length) if length else b""
        values: list[Any] = []
        for number, line in enumerate(raw.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                values.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ConfigurationError(
                    f"NDJSON body line {number} is not valid JSON: {error}"
                ) from error
        return values

    def _post(self) -> None:
        parts = [part for part in self.path.split("?")[0].split("/") if part]
        if parts == ["records", "batch"]:
            # NDJSON, not JSON: routed before the JSON body parse.
            records = self._read_ndjson_body()
            self._send_json(200, self.app.ingest({"records": records}))
            return
        payload = self._read_body()
        if parts == ["campaigns"]:
            self._send_json(200, self.app.submit_campaign(payload))
        elif parts == ["lease"]:
            self._send_json(200, self.app.lease(payload))
        elif len(parts) == 3 and parts[0] == "leases" and parts[2] == "heartbeat":
            self._send_json(200, self.app.heartbeat(parts[1]))
        elif len(parts) == 3 and parts[0] == "leases" and parts[2] == "complete":
            self._send_json(200, self.app.complete(parts[1]))
        elif parts == ["records"]:
            self._send_json(200, self.app.ingest(payload))
        elif parts == ["records", "query"]:
            self._send_json(200, self.app.query_missing(payload))
        elif parts == ["scenarios"]:
            self._send_json(200, self.app.run_scenario(payload))
        else:
            raise _NotFound(f"no such endpoint: POST {self.path}")


class CampaignHTTPServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` with the :class:`CampaignServer` attached."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], app: CampaignServer) -> None:
        self.app = app
        super().__init__(address, _Handler)


def start_server(
    store: "ResultStore | PackedResultStore | str | Path",
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    log: Callable[[str], None] | None = None,
) -> CampaignHTTPServer:
    """Bind a campaign server (``port=0``: any free port) without serving yet.

    The caller owns the serve loop: ``server.serve_forever()`` to run,
    ``server.shutdown()`` (from another thread) to stop,
    ``server.server_address`` for the bound ``(host, port)``.
    """
    app = CampaignServer(store, lease_ttl=lease_ttl)
    app.log = log
    return CampaignHTTPServer((host, port), app)
