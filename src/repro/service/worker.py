"""The worker loop behind ``repro work``: lease, dedup, compute, upload.

A worker is stateless: everything it needs arrives in the lease response
(the campaign's grid spec plus a shard index), and everything it produces
leaves as store-format records through ``POST /records``.  That is what
makes workers killable at any instant -- a dead worker's lease expires
server-side and the shard is re-offered; the replacement worker's first
act is a batch presence query, so scenarios the dead worker already
uploaded are never recomputed.

Per leased shard the loop is:

1. rebuild the shard's scenario slice locally from the grid spec
   (deterministic grid order makes this exact);
2. ``POST /records/query`` with every scenario digest -- already-solved
   scenarios are skipped (counted in :attr:`WorkerStats.skipped`);
3. solve the rest through a local in-memory :class:`~repro.api.engine.
   Engine` and upload each record as soon as it is done (no batching: an
   interrupted worker loses at most the scenario in flight);
4. heartbeat after every scenario; when the server answers ``gone`` the
   lease has expired and the worker abandons the shard immediately
   (someone else owns it now);
5. ``POST /leases/<id>/complete`` when the slice is exhausted.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.api.engine import Engine
from repro.core.exceptions import ReproError
from repro.service.client import ServiceClient
from repro.service.protocol import GridSpec
from repro.store.result_store import make_record

#: Seconds between lease polls when the server reports no open work.
DEFAULT_POLL = 1.0


@dataclass
class WorkerStats:
    """What one :func:`run_worker` invocation did, for logs and tests."""

    shards: int = 0
    computed: int = 0
    skipped: int = 0
    stored: int = 0
    duplicates: int = 0
    failed: int = 0
    abandoned: int = 0
    #: Scenario digests this worker solved itself (not skipped), in order.
    solved_keys: list[str] = field(default_factory=list)

    def describe(self) -> str:
        """One-line summary printed when the worker exits."""
        return (
            f"worker done: {self.shards} shard(s), {self.computed} computed, "
            f"{self.skipped} skipped (already solved), {self.stored} stored, "
            f"{self.duplicates} duplicate(s), {self.failed} failed, "
            f"{self.abandoned} abandoned lease(s)"
        )


def run_worker(
    server: "str | ServiceClient",
    *,
    worker: str | None = None,
    campaign: str | None = None,
    poll: float = DEFAULT_POLL,
    until_idle: bool = False,
    max_shards: int | None = None,
    log: Callable[[str], None] | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> WorkerStats:
    """Run the lease/compute/upload loop against a campaign server.

    Parameters
    ----------
    server:
        Base URL of the campaign server, or an existing client.
    worker:
        Worker name reported with every lease (default: ``worker-<pid>``).
    campaign:
        Restrict leasing to one campaign id (default: any open campaign).
    poll:
        Seconds between lease attempts while the server has no open work.
    until_idle:
        Exit as soon as the server reports no open work at all (the batch
        mode CI and tests run); the default is to keep polling forever
        (the daemon mode real fleets run).
    max_shards:
        Stop after completing this many shards (``None``: unlimited).
    log:
        Optional sink for progress lines.
    sleep:
        Injectable sleep (tests pass a no-op).

    Returns
    -------
    WorkerStats
        Counters of everything the worker did.
    """
    client = server if isinstance(server, ServiceClient) else ServiceClient(server)
    name = worker or f"worker-{os.getpid()}"
    stats = WorkerStats()

    def say(message: str) -> None:
        if log is not None:
            log(message)

    while True:
        if max_shards is not None and stats.shards >= max_shards:
            return stats
        response = client.lease(name, campaign=campaign)
        status = response.get("status")
        if status == "idle":
            if until_idle:
                return stats
            sleep(poll)
            continue
        if status == "wait":
            # Shards exist but every one is currently leased.  Even under
            # ``until_idle`` we keep polling: a leased shard may belong to a
            # dead worker, in which case its lease expires and we must be
            # around to pick the shard up -- exiting here could strand a
            # campaign one shard short of complete.
            sleep(poll)
            continue
        if status != "granted":
            raise ReproError(f"unexpected lease status {status!r} from server")

        lease = str(response["lease"])
        shard = int(response["shard"])
        shards = int(response["shards"])
        spec = GridSpec.from_wire(response["grid"])
        scenarios = list(spec.build_grid().shard(shard, shards))
        say(
            f"{name}: leased {response.get('campaign')} shard {shard + 1}/{shards} "
            f"({len(scenarios)} scenario(s)) as {lease}"
        )

        todo = set(client.missing([scenario.digest for scenario in scenarios]))
        engine = Engine()  # local memory cache only; the server owns the store
        abandoned = False
        for scenario in scenarios:
            if scenario.digest not in todo:
                stats.skipped += 1
                continue
            try:
                outcome = engine.run(scenario)
            except ReproError as error:
                # An infeasible operating point is a scenario-level outcome,
                # not a worker failure; record it and move on.
                stats.failed += 1
                say(f"{name}: {scenario.describe()} failed: {error}")
                continue
            stats.computed += 1
            stats.solved_keys.append(scenario.digest)
            report = client.put_record(make_record(scenario, outcome.result))
            stats.stored += int(report.get("stored", 0))
            stats.duplicates += int(report.get("duplicates", 0))
            if client.heartbeat(lease).get("status") == "gone":
                # Our lease expired mid-shard: the shard is someone else's
                # now.  Everything uploaded so far is already deduplicated.
                stats.abandoned += 1
                abandoned = True
                say(f"{name}: lease {lease} expired; abandoning shard {shard}")
                break
        if not abandoned:
            client.complete(lease)
            stats.shards += 1
            say(f"{name}: completed shard {shard + 1}/{shards}")
