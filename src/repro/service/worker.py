"""The worker loop behind ``repro work``: lease, dedup, compute, upload.

A worker is stateless: everything it needs arrives in the lease response
(the campaign's grid spec plus a shard index), and everything it produces
leaves as store-format records through ``POST /records``.  That is what
makes workers killable at any instant -- a dead worker's lease expires
server-side and the shard is re-offered; the replacement worker's first
act is a batch presence query, so scenarios the dead worker already
uploaded are never recomputed.

Per leased shard the loop is:

1. rebuild the shard's scenario slice locally from the grid spec
   (deterministic grid order makes this exact);
2. ``POST /records/query`` with every scenario digest -- already-solved
   scenarios are skipped (counted in :attr:`WorkerStats.skipped`);
3. plan the rest into structure-sharing chunks (:class:`~repro.api.plan.
   SweepPlan`, ``chunk_size`` defaulting to ``"auto"``), solve each chunk
   through a local in-memory :class:`~repro.api.engine.Engine` and upload
   its records in one batched ``POST /records/batch`` NDJSON request
   (falling back to per-record ``POST /records`` against servers
   predating the endpoint);
4. heartbeat after every scenario; when the server answers ``gone`` the
   lease has expired -- the worker flushes the records it already
   computed, then abandons the shard (someone else owns it now);
5. ``POST /leases/<id>/complete`` when the slice is exhausted.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.api.engine import Engine
from repro.api.plan import AUTO_CHUNK, SweepPlan
from repro.core.exceptions import ReproError, ServiceError
from repro.service.client import ServiceClient
from repro.service.protocol import GridSpec
from repro.store.result_store import make_record

#: Seconds between lease polls when the server reports no open work.
DEFAULT_POLL = 1.0


@dataclass
class WorkerStats:
    """What one :func:`run_worker` invocation did, for logs and tests."""

    shards: int = 0
    computed: int = 0
    skipped: int = 0
    stored: int = 0
    duplicates: int = 0
    failed: int = 0
    abandoned: int = 0
    #: Scenario digests this worker solved itself (not skipped), in order.
    solved_keys: list[str] = field(default_factory=list)

    def describe(self) -> str:
        """One-line summary printed when the worker exits."""
        return (
            f"worker done: {self.shards} shard(s), {self.computed} computed, "
            f"{self.skipped} skipped (already solved), {self.stored} stored, "
            f"{self.duplicates} duplicate(s), {self.failed} failed, "
            f"{self.abandoned} abandoned lease(s)"
        )


def run_worker(
    server: "str | ServiceClient",
    *,
    worker: str | None = None,
    campaign: str | None = None,
    poll: float = DEFAULT_POLL,
    until_idle: bool = False,
    max_shards: int | None = None,
    chunk_size: "int | str" = AUTO_CHUNK,
    log: Callable[[str], None] | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> WorkerStats:
    """Run the lease/compute/upload loop against a campaign server.

    Parameters
    ----------
    server:
        Base URL of the campaign server, or an existing client.
    worker:
        Worker name reported with every lease (default: ``worker-<pid>``).
    campaign:
        Restrict leasing to one campaign id (default: any open campaign).
    poll:
        Seconds between lease attempts while the server has no open work.
    chunk_size:
        Scenarios per upload batch: a positive int, or ``"auto"`` to size
        from the shard's to-compute count.  Chunking changes only the
        upload cadence, never which scenarios are computed or their
        records -- digests stay identical to unchunked workers.
    until_idle:
        Exit as soon as the server reports no open work at all (the batch
        mode CI and tests run); the default is to keep polling forever
        (the daemon mode real fleets run).
    max_shards:
        Stop after completing this many shards (``None``: unlimited).
    log:
        Optional sink for progress lines.
    sleep:
        Injectable sleep (tests pass a no-op).

    Returns
    -------
    WorkerStats
        Counters of everything the worker did.
    """
    client = server if isinstance(server, ServiceClient) else ServiceClient(server)
    name = worker or f"worker-{os.getpid()}"
    stats = WorkerStats()
    # Sticky across shards: once the server 404s the batch endpoint we stop
    # re-probing it and stay on per-record uploads for this worker's life.
    batch_supported = True

    def say(message: str) -> None:
        if log is not None:
            log(message)

    def upload(records: "list[dict]") -> tuple[int, int]:
        """Ship buffered records; returns ``(stored, duplicates)``."""
        nonlocal batch_supported
        if not records:
            return 0, 0
        if batch_supported:
            try:
                report = client.put_records_batch(records)
            except ServiceError as error:
                if error.status != 404:
                    raise
                batch_supported = False
                say(f"{name}: server lacks /records/batch; using per-record uploads")
            else:
                return int(report.get("stored", 0)), int(report.get("duplicates", 0))
        stored = duplicates = 0
        for record in records:
            report = client.put_record(record)
            stored += int(report.get("stored", 0))
            duplicates += int(report.get("duplicates", 0))
        return stored, duplicates

    while True:
        if max_shards is not None and stats.shards >= max_shards:
            return stats
        response = client.lease(name, campaign=campaign)
        status = response.get("status")
        if status == "idle":
            if until_idle:
                return stats
            sleep(poll)
            continue
        if status == "wait":
            # Shards exist but every one is currently leased.  Even under
            # ``until_idle`` we keep polling: a leased shard may belong to a
            # dead worker, in which case its lease expires and we must be
            # around to pick the shard up -- exiting here could strand a
            # campaign one shard short of complete.
            sleep(poll)
            continue
        if status != "granted":
            raise ReproError(f"unexpected lease status {status!r} from server")

        lease = str(response["lease"])
        shard = int(response["shard"])
        shards = int(response["shards"])
        spec = GridSpec.from_wire(response["grid"])
        scenarios = list(spec.build_grid().shard(shard, shards))
        say(
            f"{name}: leased {response.get('campaign')} shard {shard + 1}/{shards} "
            f"({len(scenarios)} scenario(s)) as {lease}"
        )

        todo = set(client.missing([scenario.digest for scenario in scenarios]))
        compute = [scenario for scenario in scenarios if scenario.digest in todo]
        stats.skipped += len(scenarios) - len(compute)
        plan = SweepPlan.build(compute, chunk_size=chunk_size)
        if compute:
            say(f"{name}: {plan.describe()}")
        engine = Engine()  # local memory cache only; the server owns the store
        abandoned = False
        for number, chunk in enumerate(plan, start=1):
            buffer: list[dict] = []
            for scenario in chunk.scenarios:
                try:
                    outcome = engine.run(scenario)
                except ReproError as error:
                    # An infeasible operating point is a scenario-level
                    # outcome, not a worker failure; record it and move on.
                    stats.failed += 1
                    say(f"{name}: {scenario.describe()} failed: {error}")
                    continue
                stats.computed += 1
                stats.solved_keys.append(scenario.digest)
                buffer.append(make_record(scenario, outcome.result))
                if client.heartbeat(lease).get("status") == "gone":
                    # Our lease expired mid-shard: the shard is someone
                    # else's now.  Flush what this chunk already computed
                    # (uploads are deduplicated), then walk away.
                    stored, duplicates = upload(buffer)
                    stats.stored += stored
                    stats.duplicates += duplicates
                    stats.abandoned += 1
                    abandoned = True
                    say(f"{name}: lease {lease} expired; abandoning shard {shard}")
                    break
            if abandoned:
                break
            stored, duplicates = upload(buffer)
            stats.stored += stored
            stats.duplicates += duplicates
            say(
                f"{name}: shard {shard + 1}/{shards} chunk {number}/{len(plan)}: "
                f"uploaded {len(buffer)} record(s) "
                f"({stored} stored, {duplicates} duplicate(s))"
            )
        if not abandoned:
            client.complete(lease)
            stats.shards += 1
            say(f"{name}: completed shard {shard + 1}/{shards}")
