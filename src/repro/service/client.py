"""Thin JSON client of the campaign service (stdlib ``urllib`` only).

:class:`ServiceClient` is both the worker's transport and the
programmatic way to drive a running ``repro serve`` daemon: submit
campaigns, poll progress, stream results.  Every method mirrors one HTTP
endpoint and speaks plain dicts -- the wire forms are defined in
:mod:`repro.service.protocol`.

All failures surface as :class:`~repro.core.exceptions.ServiceError`:
transport problems (server unreachable, connection dropped) carry
``status=None``, protocol rejections carry the HTTP status code and the
server's ``error`` message.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Iterator, Sequence

from repro.core.exceptions import ServiceError
from repro.service.protocol import GridSpec

#: Default per-request timeout (seconds).  Generous: endpoints answer in
#: milliseconds, but a one-shot ``POST /scenarios`` solves server-side.
DEFAULT_TIMEOUT = 60.0


class ServiceClient:
    """JSON client bound to one campaign server base URL.

    Parameters
    ----------
    server:
        Base URL, e.g. ``http://127.0.0.1:8750`` (a bare ``host:port`` is
        accepted and gets the scheme prepended).
    timeout:
        Per-request socket timeout in seconds.
    """

    def __init__(self, server: str, *, timeout: float = DEFAULT_TIMEOUT) -> None:
        if "://" not in server:
            server = f"http://{server}"
        self.base_url = server.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _open(
        self,
        path: str,
        payload: dict[str, Any] | None = None,
        raw: "bytes | None" = None,
        content_type: str = "application/json",
    ):
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if raw is not None:
            data = raw
            headers["Content-Type"] = content_type
        elif payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = content_type
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            return urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as error:
            detail = ""
            try:
                body = json.loads(error.read().decode("utf-8"))
                detail = str(body.get("error", ""))
            except Exception:  # noqa: BLE001 - any unreadable body
                pass
            message = detail or f"HTTP {error.code}"
            raise ServiceError(
                f"{path}: server rejected the request: {message}", status=error.code
            ) from error
        except urllib.error.URLError as error:
            raise ServiceError(f"{path}: cannot reach {self.base_url}: {error.reason}") from error
        except OSError as error:
            raise ServiceError(f"{path}: transport failure: {error}") from error

    def _call(
        self,
        path: str,
        payload: dict[str, Any] | None = None,
        raw: "bytes | None" = None,
        content_type: str = "application/json",
    ) -> dict[str, Any]:
        with self._open(path, payload, raw=raw, content_type=content_type) as response:
            try:
                decoded = json.loads(response.read().decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError, OSError) as error:
                raise ServiceError(f"{path}: malformed server response: {error}") from error
        if not isinstance(decoded, dict):
            raise ServiceError(f"{path}: server response is not a JSON object")
        return decoded

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        """``GET /health``: server status, store shape, counters."""
        return self._call("/health")

    def submit_campaign(self, spec: GridSpec) -> dict[str, Any]:
        """``POST /campaigns``: register a sweep campaign; returns its progress."""
        return self._call("/campaigns", {"grid": spec.to_wire()})

    def list_campaigns(self) -> list[dict[str, Any]]:
        """``GET /campaigns``: progress of every submitted campaign."""
        return list(self._call("/campaigns").get("campaigns", []))

    def progress(self, campaign: str) -> dict[str, Any]:
        """``GET /campaigns/<id>``: one campaign's shard states and solve count."""
        return self._call(f"/campaigns/{campaign}")

    def digest(self, campaign: str) -> dict[str, Any]:
        """``GET /campaigns/<id>/digest``: the order-insensitive sweep digest."""
        return self._call(f"/campaigns/{campaign}/digest")

    def results(self, campaign: str) -> Iterator[dict[str, Any]]:
        """``GET /campaigns/<id>/results``: stream solved records (JSONL)."""
        with self._open(f"/campaigns/{campaign}/results") as response:
            for line in response:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError) as error:
                    raise ServiceError(
                        f"/campaigns/{campaign}/results: malformed record line: {error}"
                    ) from error

    def lease(self, worker: str, campaign: str | None = None) -> dict[str, Any]:
        """``POST /lease``: claim a pending shard (``granted``/``wait``/``idle``)."""
        payload: dict[str, Any] = {"worker": worker}
        if campaign is not None:
            payload["campaign"] = campaign
        return self._call("/lease", payload)

    def heartbeat(self, lease: str) -> dict[str, Any]:
        """``POST /leases/<id>/heartbeat``: extend the lease (``ok``/``gone``)."""
        return self._call(f"/leases/{lease}/heartbeat", {})

    def complete(self, lease: str) -> dict[str, Any]:
        """``POST /leases/<id>/complete``: mark the shard done (``done``/``gone``)."""
        return self._call(f"/leases/{lease}/complete", {})

    def missing(self, keys: Sequence[str]) -> tuple[str, ...]:
        """``POST /records/query``: which of these digests the store lacks."""
        response = self._call("/records/query", {"keys": list(keys)})
        missing = response.get("missing")
        if not isinstance(missing, list):
            raise ServiceError("/records/query: server response lacks 'missing'")
        return tuple(str(key) for key in missing)

    def put_record(self, record: dict[str, Any]) -> dict[str, Any]:
        """``POST /records``: upload one completed record (deduplicated)."""
        return self._call("/records", {"record": record})

    def put_records(self, records: Sequence[dict[str, Any]]) -> dict[str, Any]:
        """``POST /records``: upload a batch of completed records."""
        return self._call("/records", {"records": list(records)})

    def put_records_batch(self, records: Sequence[dict[str, Any]]) -> dict[str, Any]:
        """``POST /records/batch``: bulk NDJSON upload of completed records.

        One HTTP request per batch, one JSON line per record -- the
        chunked worker's upload path.  Digest verification and dedup are
        identical to :meth:`put_record`: a malformed record rejects the
        whole batch (400), nothing is partially stored.  Servers predating
        the endpoint answer 404 (``ServiceError.status``); callers fall
        back to per-record uploads.
        """
        body = b"".join(
            json.dumps(record).encode("utf-8") + b"\n" for record in records
        )
        return self._call("/records/batch", raw=body, content_type="application/x-ndjson")

    def run_scenario(self, scenario: dict[str, Any]) -> dict[str, Any]:
        """``POST /scenarios``: solve one scenario server-side, get its record."""
        return self._call("/scenarios", {"scenario": scenario})
