"""Campaign service: a stdlib-only HTTP/JSON daemon for distributed sweeps.

The streaming campaign layer (:mod:`repro.api.grid`,
:meth:`Engine.run_iter <repro.api.engine.Engine.run_iter>`) already makes
single-process sweeps shardable and resumable; this package adds the
coordination tier that lets *several* processes -- possibly on several
machines -- fill one result store together:

* :mod:`repro.service.protocol` -- the wire forms: :class:`GridSpec`
  (a JSON-safe sweep-grid description that server and workers expand into
  byte-identical scenario sequences) and the single-scenario request;
* :mod:`repro.service.server` -- :class:`CampaignServer` (campaign and
  shard-lease bookkeeping around an :class:`~repro.api.engine.Engine` and
  a result store) plus the ``ThreadingHTTPServer`` front end behind
  ``repro serve``;
* :mod:`repro.service.client` -- :class:`ServiceClient`, a thin
  ``urllib``-based JSON client (also the programmatic API for submitting
  campaigns);
* :mod:`repro.service.worker` -- :func:`run_worker`, the
  lease/compute/upload loop behind ``repro work``.

Everything on the wire is the store's own record format
(:func:`repro.store.make_record`), so a campaign run through the service
leaves behind exactly the store a local ``repro sweep --store`` would
have written -- same digests, same bytes.  See ARCHITECTURE.md
("The campaign service") for the lease lifecycle and failure model.
"""

from repro.service.client import ServiceClient
from repro.service.protocol import (
    PROTOCOL_VERSION,
    GridSpec,
    scenario_from_wire,
    scenario_to_wire,
)
from repro.service.server import CampaignServer, start_server
from repro.service.worker import WorkerStats, run_worker

__all__ = [
    "PROTOCOL_VERSION",
    "CampaignServer",
    "GridSpec",
    "ServiceClient",
    "WorkerStats",
    "run_worker",
    "scenario_from_wire",
    "scenario_to_wire",
    "start_server",
]
